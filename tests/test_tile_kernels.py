"""Tests for the tile numerical kernels (POTRF/TRSM/SYRK/GEMM)."""

import numpy as np
import pytest
from scipy import linalg as sla

from repro.exceptions import NotPositiveDefiniteError, ShapeError
from repro.tile import DenseTile, LowRankTile, Precision
from repro.tile import kernels as K
from repro.tile.compression import truncated_svd


def spd(n, seed=0):
    gen = np.random.default_rng(seed)
    a = gen.standard_normal((n, n))
    return a @ a.T / n + np.eye(n)


def lr_tile(rng, m, n, rank, precision=Precision.FP64):
    a = rng.standard_normal((m, rank)) @ rng.standard_normal((rank, n))
    u, v, _ = truncated_svd(a, 1e-12)
    return LowRankTile(u, v, precision), a


class TestPotrf:
    def test_matches_numpy(self):
        a = spd(16)
        low = K.potrf(DenseTile(a))
        np.testing.assert_allclose(low.to_dense64(), np.linalg.cholesky(a), atol=1e-12)

    def test_indefinite_raises_with_index(self):
        a = -np.eye(4)
        with pytest.raises(NotPositiveDefiniteError) as exc:
            K.potrf(DenseTile(a), index=(3, 3))
        assert exc.value.tile_index == (3, 3)

    def test_low_rank_input_rejected(self):
        with pytest.raises(ShapeError):
            K.potrf(LowRankTile(np.zeros((4, 1)), np.zeros((4, 1))))

    def test_fp32_storage_preserved(self):
        low = K.potrf(DenseTile(spd(8), Precision.FP32))
        assert low.precision is Precision.FP32


class TestTrsm:
    def test_dense_matches_reference(self, rng):
        low = np.linalg.cholesky(spd(10, 1))
        a = rng.standard_normal((10, 10))
        out = K.trsm(DenseTile(low), DenseTile(a))
        # A <- A L^{-T}
        expected = sla.solve_triangular(low, a.T, lower=True,
                                        check_finite=False).T
        np.testing.assert_allclose(out.to_dense64(), expected, atol=1e-12)

    def test_low_rank_only_touches_v(self, rng):
        low = np.linalg.cholesky(spd(10, 2))
        tile, dense = lr_tile(rng, 10, 10, 3)
        out = K.trsm(DenseTile(low), tile)
        assert isinstance(out, LowRankTile)
        assert out.rank == 3
        expected = sla.solve_triangular(low, dense.T, lower=True,
                                        check_finite=False).T
        np.testing.assert_allclose(out.to_dense64(), expected, atol=1e-10)

    def test_zero_rank_passthrough(self):
        low = DenseTile(np.eye(4))
        tile = LowRankTile(np.zeros((4, 0)), np.zeros((4, 0)))
        assert K.trsm(low, tile) is tile

    def test_lr_triangle_rejected(self, rng):
        tile, _ = lr_tile(rng, 4, 4, 1)
        with pytest.raises(ShapeError):
            K.trsm(tile, DenseTile(np.zeros((4, 4))))

    def test_fp16_storage_quantizes(self, rng):
        low = np.linalg.cholesky(spd(8, 3))
        a = rng.standard_normal((8, 8))
        out = K.trsm(DenseTile(low), DenseTile(a, Precision.FP16))
        assert out.precision is Precision.FP16
        # Values must be exactly representable in fp16.
        d = out.to_dense64()
        d16 = d.astype(np.float16)  # lint: ignore[LINT005] — representability check
        np.testing.assert_array_equal(d, d16.astype(np.float64))


class TestSyrk:
    def test_dense(self, rng):
        c = spd(8, 4)
        a = rng.standard_normal((8, 8))
        out = K.syrk(DenseTile(a), DenseTile(c))
        np.testing.assert_allclose(out.to_dense64(), c - a @ a.T, atol=1e-12)

    def test_low_rank_input(self, rng):
        c = spd(10, 5)
        tile, dense = lr_tile(rng, 10, 10, 2)
        out = K.syrk(tile, DenseTile(c))
        np.testing.assert_allclose(
            out.to_dense64(), c - dense @ dense.T, atol=1e-10
        )

    def test_zero_rank_noop(self):
        c = DenseTile(spd(6, 6))
        tile = LowRankTile(np.zeros((6, 0)), np.zeros((6, 0)))
        assert K.syrk(tile, c) is c

    def test_lr_output_rejected(self, rng):
        tile, _ = lr_tile(rng, 4, 4, 1)
        with pytest.raises(ShapeError):
            K.syrk(DenseTile(np.zeros((4, 4))), tile)


class TestGemmDenseOutput:
    def test_all_dense(self, rng):
        a = rng.standard_normal((6, 6))
        b = rng.standard_normal((6, 6))
        c = rng.standard_normal((6, 6))
        out = K.gemm(DenseTile(a), DenseTile(b), DenseTile(c))
        np.testing.assert_allclose(out.to_dense64(), c - a @ b.T, atol=1e-12)

    def test_lr_a_dense_b(self, rng):
        ta, a = lr_tile(rng, 6, 6, 2)
        b = rng.standard_normal((6, 6))
        c = rng.standard_normal((6, 6))
        out = K.gemm(ta, DenseTile(b), DenseTile(c))
        np.testing.assert_allclose(out.to_dense64(), c - a @ b.T, atol=1e-10)

    def test_dense_a_lr_b(self, rng):
        a = rng.standard_normal((6, 6))
        tb, b = lr_tile(rng, 6, 6, 3)
        c = rng.standard_normal((6, 6))
        out = K.gemm(DenseTile(a), tb, DenseTile(c))
        np.testing.assert_allclose(out.to_dense64(), c - a @ b.T, atol=1e-10)

    def test_lr_lr(self, rng):
        ta, a = lr_tile(rng, 6, 6, 2)
        tb, b = lr_tile(rng, 6, 6, 4)
        c = rng.standard_normal((6, 6))
        out = K.gemm(ta, tb, DenseTile(c))
        np.testing.assert_allclose(out.to_dense64(), c - a @ b.T, atol=1e-10)

    def test_zero_rank_inputs(self, rng):
        za = LowRankTile(np.zeros((6, 0)), np.zeros((6, 0)))
        c = rng.standard_normal((6, 6))
        out = K.gemm(za, za, DenseTile(c))
        np.testing.assert_allclose(out.to_dense64(), c, atol=1e-14)


class TestGemmLowRankOutput:
    def test_lr_update_stays_lr(self, rng):
        ta, a = lr_tile(rng, 8, 8, 2)
        tb, b = lr_tile(rng, 8, 8, 2)
        tc, c = lr_tile(rng, 8, 8, 3)
        tol = 1e-10 * np.linalg.norm(c - a @ b.T)
        out = K.gemm(ta, tb, tc, tol=tol, max_rank=8)
        assert out.is_low_rank
        np.testing.assert_allclose(
            out.to_dense64(), c - a @ b.T,
            atol=1e-8 * np.linalg.norm(c),
        )

    def test_dense_inputs_compressed_update(self, rng):
        a = rng.standard_normal((8, 2)) @ rng.standard_normal((2, 8))
        b = rng.standard_normal((8, 2)) @ rng.standard_normal((2, 8))
        tc, c = lr_tile(rng, 8, 8, 2)
        tol = 1e-9 * np.linalg.norm(c)
        out = K.gemm(DenseTile(a), DenseTile(b), tc, tol=tol, max_rank=8)
        np.testing.assert_allclose(out.to_dense64(), c - a @ b.T, atol=1e-7)

    def test_rank_overflow_densifies(self, rng):
        """When the update cannot be recompressed under max_rank the
        tile converts to dense (the runtime's fallback)."""
        ta = DenseTile(rng.standard_normal((8, 8)))
        tb = DenseTile(rng.standard_normal((8, 8)))
        tc, c = lr_tile(rng, 8, 8, 1)
        out = K.gemm(ta, tb, tc, tol=1e-14, max_rank=2, allow_densify=True)
        assert not out.is_low_rank
        np.testing.assert_allclose(
            out.to_dense64(),
            c - ta.to_dense64() @ tb.to_dense64().T,
            atol=1e-10,
        )

    def test_rank_overflow_raises_when_disallowed(self, rng):
        from repro.exceptions import CompressionError

        ta = DenseTile(rng.standard_normal((8, 8)))
        tb = DenseTile(rng.standard_normal((8, 8)))
        tc, _ = lr_tile(rng, 8, 8, 1)
        with pytest.raises(CompressionError):
            K.gemm(ta, tb, tc, tol=1e-14, max_rank=2, allow_densify=False)


class TestPrecisionSemantics:
    def test_fp32_gemm_loses_digits(self, rng):
        """An FP32-lead GEMM must show single-precision error, i.e. the
        conversion really happens."""
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        c = rng.standard_normal((32, 32))
        exact = c - a @ b.T
        out32 = K.gemm(DenseTile(a), DenseTile(b), DenseTile(c, Precision.FP32))
        err = np.max(np.abs(out32.to_dense64() - exact))
        assert 1e-9 < err < 1e-3

    def test_fp16_with_fp32_accumulation_better_than_pure(self, rng):
        """SHGEMM emulation (FP32 accumulate) must beat pure HGEMM."""
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        c = np.zeros((64, 64))
        exact = -a @ b.T
        mixed = K.gemm(
            DenseTile(a, Precision.FP16),
            DenseTile(b, Precision.FP16),
            DenseTile(c, Precision.FP16),
            fp16_accumulate_fp32=True,
        )
        pure = K.gemm(
            DenseTile(a, Precision.FP16),
            DenseTile(b, Precision.FP16),
            DenseTile(c, Precision.FP16),
            fp16_accumulate_fp32=False,
        )
        err_mixed = np.linalg.norm(mixed.to_dense64() - exact)
        err_pure = np.linalg.norm(pure.to_dense64() - exact)
        assert err_mixed <= err_pure
