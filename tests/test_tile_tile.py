"""Tests for DenseTile / LowRankTile value types."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tile import DenseTile, LowRankTile, Precision


class TestDenseTile:
    def test_infers_precision_from_dtype(self):
        t = DenseTile(np.zeros((3, 4), dtype=np.float32))
        assert t.precision is Precision.FP32
        assert t.shape == (3, 4)

    def test_explicit_precision_casts(self):
        t = DenseTile(np.ones((2, 2)), Precision.FP16)
        assert t.data.dtype == np.float16

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            DenseTile(np.zeros(4))

    def test_nbytes(self):
        t = DenseTile(np.zeros((10, 10)), Precision.FP16)
        assert t.nbytes == 200

    def test_to_dense64_exact_upcast(self):
        a = np.array([[1.5, 2.25]], dtype=np.float16)
        t = DenseTile(a)
        out = t.to_dense64()
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [[1.5, 2.25]])

    def test_astype_roundtrip_fp16(self):
        t = DenseTile(np.array([[1.0 + 2.0**-12]]))
        t16 = t.astype(Precision.FP16)
        t64 = t16.astype(Precision.FP64)
        # The digits dropped by FP16 must not reappear.
        assert float(t64.data[0, 0]) == 1.0

    def test_astype_same_precision_is_self(self):
        t = DenseTile(np.zeros((2, 2)))
        assert t.astype(Precision.FP64) is t

    def test_not_low_rank(self):
        assert not DenseTile(np.zeros((2, 2))).is_low_rank


class TestLowRankTile:
    def test_shape_and_rank(self):
        t = LowRankTile(np.zeros((6, 2)), np.zeros((5, 2)))
        assert t.shape == (6, 5)
        assert t.rank == 2
        assert t.is_low_rank

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            LowRankTile(np.zeros((6, 2)), np.zeros((5, 3)))

    def test_zero_rank_valid(self):
        t = LowRankTile(np.zeros((4, 0)), np.zeros((3, 0)))
        assert t.rank == 0
        np.testing.assert_array_equal(t.to_dense64(), np.zeros((4, 3)))

    def test_to_dense64(self, rng):
        u = rng.standard_normal((7, 3))
        v = rng.standard_normal((5, 3))
        t = LowRankTile(u, v)
        np.testing.assert_allclose(t.to_dense64(), u @ v.T)

    def test_nbytes_scales_with_rank(self):
        t2 = LowRankTile(np.zeros((10, 2)), np.zeros((10, 2)), Precision.FP32)
        t4 = LowRankTile(np.zeros((10, 4)), np.zeros((10, 4)), Precision.FP32)
        assert t4.nbytes == 2 * t2.nbytes

    def test_smaller_than_dense_when_rank_low(self):
        b = 32
        dense = DenseTile(np.zeros((b, b)), Precision.FP64)
        lr = LowRankTile(np.zeros((b, 5)), np.zeros((b, 5)), Precision.FP64)
        assert lr.nbytes < dense.nbytes

    def test_precision_cast(self, rng):
        u = rng.standard_normal((4, 2))
        v = rng.standard_normal((4, 2))
        t = LowRankTile(u, v, Precision.FP32)
        assert t.u.dtype == np.float32
        t16 = t.astype(Precision.FP16)
        assert t16.u.dtype == np.float16
        assert t16.rank == 2

    def test_mixed_factor_dtypes_rejected(self):
        with pytest.raises(ShapeError):
            LowRankTile(
                np.zeros((4, 2), dtype=np.float32),
                np.zeros((4, 2), dtype=np.float64),
            )
