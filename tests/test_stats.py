"""Tests for metrics and summaries."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.stats import (
    boxplot_summary,
    crps_gaussian,
    format_table,
    interval_coverage,
    mae,
    mspe,
    rmse,
)


class TestMetrics:
    def test_mspe_zero_when_exact(self):
        z = np.arange(5.0)
        assert mspe(z, z) == 0.0

    def test_mspe_value(self):
        assert mspe([1.0, 2.0], [0.0, 0.0]) == pytest.approx(2.5)

    def test_rmse_sqrt_of_mspe(self):
        p, t = np.array([1.0, 3.0]), np.array([0.0, 0.0])
        assert rmse(p, t) == pytest.approx(np.sqrt(mspe(p, t)))

    def test_mae(self):
        assert mae([1.0, -1.0], [0.0, 0.0]) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mspe([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            mspe([], [])

    def test_coverage_perfect_prediction(self):
        z = np.zeros(100)
        se = np.ones(100)
        assert interval_coverage(z, se, z) == 1.0

    def test_coverage_calibrated_gaussian(self, rng):
        truth = rng.standard_normal(20000)
        cov = interval_coverage(np.zeros_like(truth), np.ones_like(truth), truth)
        assert cov == pytest.approx(0.95, abs=0.01)

    def test_coverage_level_bounds(self):
        with pytest.raises(ShapeError):
            interval_coverage([0.0], [1.0], [0.0], level=1.5)

    def test_crps_smaller_for_better_forecast(self, rng):
        truth = rng.standard_normal(2000)
        good = crps_gaussian(truth + 0.01 * rng.standard_normal(2000),
                             np.full(2000, 0.1), truth)
        bad = crps_gaussian(np.zeros(2000), np.full(2000, 1.0), truth)
        assert good < bad

    def test_crps_positive_se_required(self):
        with pytest.raises(ShapeError):
            crps_gaussian([0.0], [0.0], [0.0])


class TestBoxplotSummary:
    def test_five_numbers(self):
        s = boxplot_summary(np.arange(1, 102, dtype=float))
        assert s.minimum == 1.0 and s.maximum == 101.0
        assert s.median == 51.0
        assert s.q1 == 26.0 and s.q3 == 76.0
        assert s.n == 101

    def test_covers(self):
        s = boxplot_summary(np.arange(100, dtype=float))
        assert s.covers(50.0)
        assert not s.covers(0.1)
        assert s.covers_whiskers(0.1)
        assert not s.covers_whiskers(200.0)

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            boxplot_summary([])


class TestFormatTable:
    def test_renders_all_cells(self):
        out = format_table(
            ["a", "b"], [[1.23456, "x"], [2.0, "yy"]], title="T"
        )
        assert "T" in out
        assert "1.2346" in out
        assert "yy" in out

    def test_alignment_consistent(self):
        out = format_table(["col"], [[1.0], [22.0]])
        lines = out.splitlines()
        assert len({len(line) for line in lines if line}) <= 2
