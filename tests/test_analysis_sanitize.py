"""Tests for the dynamic concurrency sanitizer (repro.analysis.sanitize)."""

import json
import threading

import numpy as np
import pytest

from repro.analysis import sanitize as S
from repro.analysis.diagnostics import Severity
from repro.core.likelihood import loglikelihood
from repro.core.serving import PredictionEngine
from repro.exceptions import DeadlockDetectedError
from repro.kernels import MaternKernel
from repro.resilience.health import CircuitBreaker
from repro.tile.geometry import GeometryCache
from repro.tile.matrix import TileMatrix


@pytest.fixture
def sanitizer():
    """Enabled sanitizer state, always restored on exit."""
    state = S.enable_sanitizer()
    try:
        yield state
    finally:
        S.disable_sanitizer()


def _race_rules(report):
    return sorted({d.rule for d in report.diagnostics if d.rule.startswith("RACE")})


def _spawn(*fns):
    threads = [threading.Thread(target=fn) for fn in fns]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestSyntheticRaces:
    def test_write_write_race_detected(self, sanitizer):
        # Raw threads with no locks and no instrumented fork/join edges:
        # the two writes are unordered by construction, so detection is
        # deterministic regardless of the actual interleaving.
        def writer():
            S.sanitized_access("k", "fixture.counter", write=True, site="writer")

        _spawn(writer, writer)
        report = sanitizer.report()
        assert "RACE001" in _race_rules(report)
        assert any(d.severity is Severity.ERROR for d in report.diagnostics)

    def test_write_write_race_deterministic_across_runs(self):
        def one_run():
            state = S.enable_sanitizer()
            try:
                def writer():
                    S.sanitized_access(
                        "k", "fixture.counter", write=True, site="writer"
                    )

                _spawn(writer, writer)
                return _race_rules(state.report())
            finally:
                S.disable_sanitizer()

        runs = [one_run() for _ in range(5)]
        assert all(r == runs[0] for r in runs)
        assert "RACE001" in runs[0]

    def test_race_in_both_text_and_json_output(self, sanitizer):
        def writer():
            S.sanitized_access("k", "fixture.counter", write=True, site="writer")

        _spawn(writer, writer)
        report = sanitizer.report()
        assert "RACE001" in report.render_text()
        payload = json.loads(report.to_json())
        assert "RACE001" in {f["rule"] for f in payload["findings"]}
        assert payload["ok"] is False

    def test_read_write_race_detected(self, sanitizer):
        def writer():
            S.sanitized_access("k", "fixture.value", write=True, site="writer")

        def reader():
            S.sanitized_access("k", "fixture.value", write=False, site="reader")

        _spawn(writer, reader)
        rules = _race_rules(sanitizer.report())
        assert "RACE001" in rules or "RACE002" in rules

    def test_common_lock_orders_accesses(self, sanitizer):
        lock = S.sanitized_lock(name="fixture.lock")

        def writer():
            with lock:
                S.sanitized_access("k", "fixture.counter", write=True, site="w")

        _spawn(writer, writer)
        report = sanitizer.report()
        assert report.errors == []

    def test_single_thread_never_races(self, sanitizer):
        for _ in range(10):
            S.sanitized_access("k", "fixture.solo", write=True, site="main")
        assert sanitizer.report().diagnostics == []


class TestLocksetDiscipline:
    def test_hb_only_ordering_warns_race003(self, sanitizer):
        # Thread A writes, then (after joining A) thread B writes: a
        # real-time ordering the sanitizer cannot attribute to any lock
        # or instrumented edge... so stage it with an instrumented lock
        # used only for the handoff, not around the accesses.
        handoff = S.sanitized_lock(name="fixture.handoff")
        handoff.acquire()

        def first():
            S.sanitized_access("k", "fixture.staged", write=True, site="a")
            handoff.release()  # publishes a's clock

        def second():
            handoff.acquire()  # joins a's clock -> ordered, but lockset
            handoff.release()  # intersection at the accesses is empty
            S.sanitized_access("k", "fixture.staged", write=True, site="b")

        _spawn(first, second)
        report = sanitizer.report()
        assert report.errors == []
        assert "RACE003" in _race_rules(report)

    def test_expect_lock_false_exempts_race003(self, sanitizer):
        handoff = S.sanitized_lock(name="fixture.handoff")
        handoff.acquire()

        def first():
            S.sanitized_access(
                "k", "fixture.tile", write=True, site="a", expect_lock=False
            )
            handoff.release()

        def second():
            handoff.acquire()
            handoff.release()
            S.sanitized_access(
                "k", "fixture.tile", write=True, site="b", expect_lock=False
            )

        _spawn(first, second)
        assert sanitizer.report().diagnostics == []


class TestLockProtocol:
    def test_reacquire_raises_deadlock_error(self, sanitizer):
        lock = S.sanitized_lock(name="fixture.lock")
        with lock:
            with pytest.raises(DeadlockDetectedError):
                lock.acquire()
        report = sanitizer.report()
        assert "RACE005" in _race_rules(report)

    def test_rlock_reacquire_allowed(self, sanitizer):
        lock = S.sanitized_lock(threading.RLock(), name="fixture.rlock")
        with lock:
            with lock:
                pass
        assert _race_rules(sanitizer.report()) == []

    def test_nonblocking_probe_never_deadlock_errors(self, sanitizer):
        # Condition's _is_owned fallback probes with acquire(False); a
        # held lock must answer False, not raise.
        lock = S.sanitized_lock(name="fixture.lock")
        with lock:
            assert lock.acquire(False) is False
        assert _race_rules(sanitizer.report()) == []

    def test_lock_order_inversion_warns(self, sanitizer):
        a = S.sanitized_lock(name="fixture.a")
        b = S.sanitized_lock(name="fixture.b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        report = sanitizer.report()
        assert "RACE004" in _race_rules(report)
        assert report.errors == []  # inversion is a warning

    def test_consistent_order_no_inversion(self, sanitizer):
        a = S.sanitized_lock(name="fixture.a")
        b = S.sanitized_lock(name="fixture.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert _race_rules(sanitizer.report()) == []

    def test_condition_integration(self, sanitizer):
        # A Condition wrapping a sanitized lock exercises the
        # _release_save/_acquire_restore/_is_owned fallbacks.
        lock = S.sanitized_lock(name="fixture.cond")
        cond = threading.Condition(lock)
        seen = []

        def waiter():
            with cond:
                while not seen:
                    cond.wait(timeout=5.0)

        def notifier():
            with cond:
                seen.append(1)
                cond.notify_all()

        _spawn(waiter, notifier)
        assert sanitizer.report().errors == []


class TestForkJoinEdges:
    def test_pool_fork_join_orders_accesses(self, sanitizer):
        from concurrent.futures import ThreadPoolExecutor

        def work():
            S.sanitized_access("k", "fixture.pooled", write=True, site="task")

        with ThreadPoolExecutor(max_workers=2) as pool:
            pool.submit(work).result()
            pool.submit(work).result()
        # Each write is ordered through submit (fork) and result (join),
        # so no error; the lockset is empty but single... per-thread
        # serialization keeps RACE003 away only if the same pool thread
        # ran both — accept either outcome but never an error.
        assert sanitizer.report().errors == []

    def test_shutdown_joins_unconsumed_futures(self, sanitizer):
        from concurrent.futures import ThreadPoolExecutor

        def work():
            S.sanitized_access("k", "fixture.dropped", write=True, site="task")

        with ThreadPoolExecutor(max_workers=1) as pool:
            pool.submit(work)  # result() never called
        # The shutdown join still publishes the worker's clock.
        S.sanitized_access("k", "fixture.dropped", write=True, site="main")
        assert sanitizer.report().errors == []


class TestInstrumentationLifecycle:
    def test_patches_fully_restored(self):
        before = (
            TileMatrix.get, TileMatrix.set,
            GeometryCache.__init__, PredictionEngine.__init__,
            CircuitBreaker.__init__,
        )
        S.enable_sanitizer()
        try:
            assert TileMatrix.get is not before[0]
            assert S.sanitizer_active()
        finally:
            S.disable_sanitizer()
        after = (
            TileMatrix.get, TileMatrix.set,
            GeometryCache.__init__, PredictionEngine.__init__,
            CircuitBreaker.__init__,
        )
        assert after == before
        assert not S.sanitizer_active()

    def test_double_enable_rejected(self):
        S.enable_sanitizer()
        try:
            with pytest.raises(RuntimeError):
                S.enable_sanitizer()
        finally:
            S.disable_sanitizer()

    def test_access_is_noop_when_disabled(self):
        S.sanitized_access("k", "fixture.off", write=True)
        assert S.sanitizer_report().diagnostics == []


def _fit_and_predict():
    """A small threaded fit + parallel predict with NO sanitizer hooks
    in play — the bit-identity reference path."""
    kernel = MaternKernel()
    theta = np.array([1.0, 0.1, 0.5])
    gen = np.random.default_rng(7)
    x = gen.uniform(size=(64, 2))
    z = gen.standard_normal(64)
    x_test = gen.uniform(size=(32, 2))
    result = loglikelihood(
        kernel, theta, x, z, tile_size=16, variant="dense-fp64",
        nugget=1.0e-8, workers=2, cache=GeometryCache(),
    )
    engine = PredictionEngine(
        kernel, theta, x, z, result.factor,
        cache=GeometryCache(), batch=8, workers=2,
    )
    pred = engine.predict(x_test, return_uncertainty=True)
    return result.value, pred.mean, pred.variance


class TestBitIdentity:
    def test_sanitizer_off_paths_bit_identical(self):
        value_a, mean_a, var_a = _fit_and_predict()
        # An enable/disable cycle in between must leave no residue.
        state = S.enable_sanitizer()
        try:
            assert state is not None
        finally:
            S.disable_sanitizer()
        value_b, mean_b, var_b = _fit_and_predict()
        assert value_a == value_b
        assert np.array_equal(mean_a, mean_b)
        assert np.array_equal(var_a, var_b)

    def test_sanitized_run_same_numerics(self):
        # Instrumentation observes; it must not perturb the numbers.
        value_a, mean_a, var_a = _fit_and_predict()
        S.enable_sanitizer()
        try:
            value_b, mean_b, var_b = _fit_and_predict()
        finally:
            S.disable_sanitizer()
        assert value_a == value_b
        assert np.array_equal(mean_a, mean_b)
        assert np.array_equal(var_a, var_b)


class TestWorkload:
    def test_clean_tree_reports_zero_races(self):
        report = S.run_sanitized_workload()
        assert _race_rules(report) == []
        assert report.ok
        # The coverage line proves the instrumentation actually saw the
        # engines run.
        info = [d for d in report.diagnostics if d.rule == "SANITIZE"]
        assert len(info) == 1
        assert "access event" in info[0].message

    def test_workload_deterministic_at_fixed_seed(self):
        first = _race_rules(S.run_sanitized_workload(seed=123))
        second = _race_rules(S.run_sanitized_workload(seed=123))
        assert first == second == []

    def test_workload_via_cli_json(self, capsys):
        from repro.__main__ import main as cli_main

        code = cli_main(["analyze", "--sanitize-run", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        rules = {f["rule"] for f in payload["findings"]}
        assert "SANITIZE" in rules
        assert not any(r.startswith("RACE") for r in rules)


class TestBreakerSnapshot:
    def test_snapshot_consistent_after_trip(self):
        tripped = []
        breaker = CircuitBreaker(threshold=3, on_trip=lambda: tripped.append(1))
        for _ in range(3):
            breaker.record_failure()
        consecutive, trips, is_open = breaker.snapshot()
        assert (consecutive, trips, is_open) == (3, 1, True)
        assert tripped == [1]

    def test_snapshot_matches_properties(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        consecutive, trips, is_open = breaker.snapshot()
        assert consecutive == breaker.consecutive_failures == 1
        assert trips == breaker.trips == 0
        assert is_open is breaker.open is False

    def test_health_report_uses_atomic_snapshot(self):
        # Regression for the torn read: health() must compose the three
        # breaker fields from one locked snapshot, never observing a
        # streak at the threshold without its trip counted.
        kernel = MaternKernel()
        theta = np.array([1.0, 0.1, 0.5])
        gen = np.random.default_rng(3)
        x = gen.uniform(size=(32, 2))
        z = gen.standard_normal(32)
        result = loglikelihood(
            kernel, theta, x, z, tile_size=16, variant="dense-fp64",
            nugget=1.0e-8,
        )
        engine = PredictionEngine(kernel, theta, x, z, result.factor)
        stop = threading.Event()
        torn = []

        def hammer():
            while not stop.is_set():
                engine._breaker.record_failure()
                engine._breaker.record_success()

        def observe():
            for _ in range(500):
                health = engine.health()
                if (
                    health.consecutive_failures >= engine._breaker.threshold
                    and not health.breaker_open
                ):
                    torn.append(health)
            stop.set()

        _spawn(hammer, observe)
        assert torn == []
