"""Tests for offset-class profiles and the paper-scale estimator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.perfmodel import (
    A64FX,
    CLASSES,
    PlanProfile,
    estimate_cholesky,
    project_classes,
)
from repro.tile import build_planned_covariance


@pytest.fixture(scope="module")
def measured_profiles():
    from repro.kernels import MaternKernel
    from repro.ordering import order_points

    gen = np.random.default_rng(8)
    x = gen.uniform(size=(800, 2))
    x = x[order_points(x, "morton")]
    kern = MaternKernel()
    out = {}
    for name, rng_ in (("weak", 0.03), ("strong", 0.3)):
        _, rep = build_planned_covariance(
            kern, np.array([1.0, rng_, 0.5]), x, 50, nugget=1e-8,
            use_mp=True, use_tlr=True, band_size=1,
        )
        out[name] = PlanProfile.from_plan(rep.plan, label=name)
    return out


class TestPlanProfile:
    def test_fractions_rows_sum_to_one(self, measured_profiles):
        for prof in measured_profiles.values():
            np.testing.assert_allclose(prof.fractions.sum(axis=1), 1.0)

    def test_diagonal_offset_all_dense_fp64(self, measured_profiles):
        prof = measured_profiles["weak"]
        assert prof.fractions[0, CLASSES.index("dense/FP64")] == 1.0

    def test_weak_has_more_low_precision(self, measured_profiles):
        weak = measured_profiles["weak"]
        strong = measured_profiles["strong"]
        weak_low = weak.class_fraction("dense/FP16") + weak.class_fraction(
            "lr/FP32"
        )
        strong_low = strong.class_fraction("dense/FP16") + strong.class_fraction(
            "lr/FP32"
        )
        assert weak_low > strong_low

    def test_dense_fp64_profile(self):
        prof = PlanProfile.dense_fp64()
        assert prof.class_fraction("dense/FP64") == 1.0

    def test_interpolation_preserves_normalization(self, measured_profiles):
        fr, mr = measured_profiles["weak"].at_offsets(500)
        np.testing.assert_allclose(fr.sum(axis=1), 1.0)
        assert mr.shape == (500,)
        assert np.all(mr >= 0)

    def test_interpolation_identity_at_same_nt(self, measured_profiles):
        prof = measured_profiles["weak"]
        fr, mr = prof.at_offsets(prof.nt)
        np.testing.assert_allclose(fr, prof.fractions, atol=1e-12)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            PlanProfile(np.ones((3, 2)), np.zeros(3), 3)


class TestProjectClasses:
    def test_band_densifies(self, measured_profiles):
        fr, _ = project_classes(
            measured_profiles["weak"], 100, 2700, A64FX, band_size=5
        )
        lr_cols = [CLASSES.index("lr/FP64"), CLASSES.index("lr/FP32")]
        assert np.all(fr[:5, lr_cols] == 0.0)

    def test_crossover_densifies_high_ranks(self, measured_profiles):
        """At a tiny tile size the crossover rank is below measured
        ranks, so all LR mass must fold into dense."""
        from repro.perfmodel import crossover_rank

        fr, ranks = project_classes(
            measured_profiles["weak"], 50, 64, A64FX, band_size=1
        )
        lr_cols = [CLASSES.index("lr/FP64"), CLASSES.index("lr/FP32")]
        above = ranks >= crossover_rank(64, A64FX)
        assert above.any()
        assert np.all(fr[above][:, lr_cols] <= 1e-12)


class TestEstimateCholesky:
    def test_dense_reference_efficiency(self):
        """The dense FP64 estimate at a throughput-bound size must land
        near the ideal (flops / sustained-peak) time — the paper reports
        94-98% parallel efficiency at 1024 nodes."""
        prof = PlanProfile.dense_fp64()
        n = 1_000_000
        # Tile 800 as in Fig. 7 (large tiles would be chain-bound).
        est = estimate_cholesky(prof, n, 800, A64FX, nodes=1024)
        ideal = (n**3 / 3) / (1024 * 3.072e12 * 0.65)
        assert est.time_s == pytest.approx(ideal, rel=0.25)

    def test_flops_match_closed_form(self):
        prof = PlanProfile.dense_fp64()
        n, b = 270_000, 2700
        est = estimate_cholesky(prof, n, b, A64FX, nodes=64)
        assert est.flops == pytest.approx(n**3 / 3, rel=0.05)

    def test_tlr_beats_dense_at_scale(self, measured_profiles):
        """The headline: MP+dense/TLR time-to-solution is several times
        below dense FP64 at the paper's scales (Fig. 10)."""
        dense = estimate_cholesky(
            PlanProfile.dense_fp64(), 3_000_000, 2700, A64FX, nodes=4096
        )
        tlr = estimate_cholesky(
            measured_profiles["weak"], 3_000_000, 1350, A64FX,
            nodes=4096, band_size=2,
        )
        assert dense.time_s / tlr.time_s > 3.0

    def test_memory_reduction_band(self, measured_profiles):
        """Fig. 9 reports up to 79% footprint reduction for
        MP+dense/TLR; ours must be in a comparable band."""
        est = estimate_cholesky(
            measured_profiles["weak"], 1_000_000, 2700, A64FX,
            nodes=1024, band_size=3,
        )
        assert 0.5 <= est.memory_reduction <= 0.95

    def test_strong_scaling_saturates(self, measured_profiles):
        """Speedup from 4x nodes is sub-linear at fixed size (Fig. 11's
        strong-scaling limitation)."""
        times = [
            estimate_cholesky(
                measured_profiles["strong"], 1_000_000, 2700, A64FX,
                nodes=nodes, band_size=2,
            ).time_s
            for nodes in (4096, 16384)
        ]
        assert times[1] <= times[0]
        assert times[0] / times[1] < 4.0

    def test_dense_memory_equals_baseline(self):
        prof = PlanProfile.dense_fp64()
        est = estimate_cholesky(prof, 270_000, 2700, A64FX, nodes=16)
        assert est.storage_bytes == pytest.approx(est.dense_fp64_bytes)
        assert est.memory_reduction == pytest.approx(0.0, abs=1e-12)

    def test_matrix_smaller_than_tile_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_cholesky(PlanProfile.dense_fp64(), 100, 2700, A64FX, nodes=4)

    def test_bigger_matrix_takes_longer(self):
        prof = PlanProfile.dense_fp64()
        t1 = estimate_cholesky(prof, 1_000_000, 800, A64FX, nodes=1024).time_s
        t2 = estimate_cholesky(prof, 2_000_000, 800, A64FX, nodes=1024).time_s
        assert t2 > 4 * t1  # cubic growth
