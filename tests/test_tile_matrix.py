"""Tests for the TileMatrix container."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tile import DenseTile, LowRankTile, Precision, TileLayout, TileMatrix


def spd(n, seed=0):
    gen = np.random.default_rng(seed)
    a = gen.standard_normal((n, n))
    return a @ a.T / n + np.eye(n)


class TestRoundTrip:
    def test_from_to_dense(self):
        a = spd(37)
        tm = TileMatrix.from_dense(a, 10)
        np.testing.assert_allclose(tm.to_dense(), a, atol=1e-14)

    def test_lower_only(self):
        a = spd(20)
        tm = TileMatrix.from_dense(a, 7)
        low = tm.to_dense(lower_only=True)
        assert np.allclose(np.triu(low, 1), 0.0)
        np.testing.assert_allclose(np.tril(low), np.tril(a))

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            TileMatrix.from_dense(np.zeros((3, 4)), 2)


class TestAccess:
    def test_upper_triangle_rejected(self):
        tm = TileMatrix(TileLayout(10, 5))
        with pytest.raises(ShapeError):
            tm.get(0, 1)
        with pytest.raises(ShapeError):
            tm.set(0, 1, DenseTile(np.zeros((5, 5))))

    def test_missing_tile(self):
        tm = TileMatrix(TileLayout(10, 5))
        with pytest.raises(ShapeError):
            tm.get(0, 0)

    def test_wrong_shape_rejected(self):
        tm = TileMatrix(TileLayout(10, 4))
        with pytest.raises(ShapeError):
            tm.set(2, 2, DenseTile(np.zeros((4, 4))))  # last block is 2x2

    def test_complete_flag(self):
        tm = TileMatrix(TileLayout(8, 4))
        assert not tm.complete
        for i, j in tm.layout.lower_tiles():
            tm.set(i, j, DenseTile(np.zeros(tm.layout.tile_shape(i, j))))
        assert tm.complete


class TestStatistics:
    def test_nbytes_mixed(self):
        tm = TileMatrix(TileLayout(8, 4))
        tm.set(0, 0, DenseTile(np.zeros((4, 4)), Precision.FP64))
        tm.set(1, 1, DenseTile(np.zeros((4, 4)), Precision.FP16))
        tm.set(1, 0, LowRankTile(np.zeros((4, 1)), np.zeros((4, 1)), Precision.FP32))
        assert tm.nbytes == 4 * 4 * 8 + 4 * 4 * 2 + 2 * 4 * 4

    def test_dense_fp64_baseline(self):
        a = spd(12)
        tm = TileMatrix.from_dense(a, 4)
        assert tm.dense_fp64_nbytes() == 6 * 16 * 8

    def test_global_fro_norm_matches_dense(self):
        a = spd(23)
        tm = TileMatrix.from_dense(a, 6)
        assert tm.global_fro_norm() == pytest.approx(np.linalg.norm(a), rel=1e-12)

    def test_lr_tile_norm_via_gram(self, rng):
        u = rng.standard_normal((6, 2))
        v = rng.standard_normal((6, 2))
        tm = TileMatrix(TileLayout(12, 6))
        tm.set(1, 0, LowRankTile(u, v))
        norm = tm.tile_norms()[(1, 0)]
        assert norm == pytest.approx(np.linalg.norm(u @ v.T), rel=1e-10)

    def test_structure_counts(self):
        tm = TileMatrix(TileLayout(8, 4))
        tm.set(0, 0, DenseTile(np.zeros((4, 4))))
        tm.set(1, 1, DenseTile(np.zeros((4, 4))))
        tm.set(1, 0, LowRankTile(np.zeros((4, 1)), np.zeros((4, 1)), Precision.FP32))
        assert tm.structure_counts() == {"dense/FP64": 2, "lr/FP32": 1}

    def test_max_rank(self):
        tm = TileMatrix(TileLayout(8, 4))
        tm.set(1, 0, LowRankTile(np.zeros((4, 3)), np.zeros((4, 3))))
        assert tm.max_rank() == 3

    def test_copy_is_deep(self):
        a = spd(8)
        tm = TileMatrix.from_dense(a, 4)
        cp = tm.copy()
        cp.get(0, 0).data[0, 0] = 999.0
        assert tm.get(0, 0).data[0, 0] != 999.0

    def test_to_dense_incomplete_raises(self):
        tm = TileMatrix(TileLayout(8, 4))
        with pytest.raises(ShapeError):
            tm.to_dense()
