"""Tests for Morton/Hilbert orderings and the dispatcher."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ShapeError
from repro.ordering import (
    hilbert_codes_2d,
    hilbert_order,
    morton_codes,
    morton_order,
    order_points,
)


def _locality_score(x: np.ndarray, perm: np.ndarray) -> float:
    """Mean distance between consecutive points after permutation —
    lower means better locality."""
    xp = x[perm]
    return float(np.mean(np.linalg.norm(np.diff(xp, axis=0), axis=1)))


class TestMorton:
    def test_permutation_is_bijection(self, rng):
        x = rng.uniform(size=(100, 2))
        perm = morton_order(x)
        assert sorted(perm) == list(range(100))

    def test_deterministic(self, rng):
        x = rng.uniform(size=(50, 2))
        np.testing.assert_array_equal(morton_order(x), morton_order(x))

    def test_translation_invariant(self, rng):
        x = rng.uniform(size=(64, 2))
        np.testing.assert_array_equal(morton_order(x), morton_order(x + 100.0))

    def test_scale_invariant(self, rng):
        x = rng.uniform(size=(64, 2))
        np.testing.assert_array_equal(morton_order(x), morton_order(x * 7.5))

    def test_grid_order_quadrants(self):
        """On a 2x2 grid the Z-curve visits (0,0),(1,0),(0,1),(1,1)
        given y-major bit interleave (y gets the higher bit)."""
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        codes = morton_codes(pts, bits=1)
        assert codes[0] < codes[1] < codes[2] < codes[3]

    def test_improves_locality_over_random(self, rng):
        x = rng.uniform(size=(400, 2))
        random_perm = rng.permutation(400)
        assert _locality_score(x, morton_order(x)) < 0.5 * _locality_score(
            x, random_perm
        )

    def test_3d_supported(self, rng):
        x = rng.uniform(size=(30, 3))
        perm = morton_order(x)
        assert sorted(perm) == list(range(30))

    def test_1d_sorts(self):
        x = np.array([[3.0], [1.0], [2.0]])
        np.testing.assert_array_equal(morton_order(x), [1, 2, 0])

    def test_rejects_4d(self, rng):
        with pytest.raises(ShapeError):
            morton_codes(rng.uniform(size=(5, 4)))

    def test_constant_column_ok(self, rng):
        x = np.column_stack([rng.uniform(size=20), np.zeros(20)])
        assert sorted(morton_order(x)) == list(range(20))

    @given(
        hnp.arrays(
            np.float64, st.tuples(st.integers(2, 40), st.just(2)),
            elements=st.floats(0, 1, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_always_a_permutation(self, x):
        perm = morton_order(x)
        assert sorted(perm) == list(range(len(x)))


class TestHilbert:
    def test_permutation(self, rng):
        x = rng.uniform(size=(128, 2))
        assert sorted(hilbert_order(x)) == list(range(128))

    def test_codes_unique_on_grid(self):
        side = 8
        ii, jj = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        pts = np.column_stack([ii.ravel(), jj.ravel()]).astype(float)
        codes = hilbert_codes_2d(pts, bits=3)
        assert len(set(codes.tolist())) == side * side

    def test_codes_cover_exact_range_on_grid(self):
        side = 4
        ii, jj = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        pts = np.column_stack([ii.ravel(), jj.ravel()]).astype(float)
        codes = sorted(hilbert_codes_2d(pts, bits=2).tolist())
        assert codes == list(range(side * side))

    def test_grid_neighbors_adjacent(self):
        """Consecutive Hilbert indices are grid neighbors (the curve
        property Morton lacks)."""
        side = 16
        ii, jj = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        pts = np.column_stack([ii.ravel(), jj.ravel()]).astype(float)
        order = hilbert_order(pts)
        steps = np.linalg.norm(np.diff(pts[order], axis=0), axis=1)
        np.testing.assert_allclose(steps, 1.0)

    def test_improves_locality(self, rng):
        x = rng.uniform(size=(400, 2))
        assert _locality_score(x, hilbert_order(x)) < 0.5 * _locality_score(
            x, rng.permutation(400)
        )

    def test_rejects_bad_bits(self, rng):
        with pytest.raises(ShapeError):
            hilbert_codes_2d(rng.uniform(size=(4, 2)), bits=0)


class TestDispatcher:
    def test_none_is_identity(self, rng):
        x = rng.uniform(size=(10, 2))
        np.testing.assert_array_equal(order_points(x, "none"), np.arange(10))

    def test_random_seeded(self, rng):
        x = rng.uniform(size=(30, 2))
        p1 = order_points(x, "random", seed=5)
        p2 = order_points(x, "random", seed=5)
        np.testing.assert_array_equal(p1, p2)

    def test_unknown_method(self, rng):
        with pytest.raises(ShapeError):
            order_points(rng.uniform(size=(4, 2)), "zigzag")

    def test_space_time_groups_spatial_cells(self, rng):
        """Space-time ordering keeps all time replicas of close points
        near each other."""
        space = rng.uniform(size=(20, 2))
        x = np.vstack(
            [np.column_stack([space, np.full(20, float(t))]) for t in range(3)]
        )
        perm = order_points(x, "morton", space_time=True)
        xp = x[perm]
        # Same spatial point's three time slices must be consecutive.
        for i in range(0, 60, 3):
            block = xp[i : i + 3, :2]
            assert np.allclose(block, block[0])

    def test_hilbert_requires_2d(self, rng):
        with pytest.raises(ShapeError):
            order_points(rng.uniform(size=(5, 3)), "hilbert")
