"""End-to-end integration tests: the full paper pipeline at mini scale."""

import numpy as np
import pytest

from repro import ExaGeoStatModel
from repro.core import loglikelihood
from repro.data import et_surrogate, soil_moisture_surrogate
from repro.perfmodel import A64FX, PlanProfile, estimate_cholesky
from repro.runtime import SimConfig, cholesky_tasks, simulate_tasks
from repro.stats import mspe


class TestSoilMoistureStudy:
    """Mini Table I: three variants on the soil-moisture surrogate."""

    @pytest.fixture(scope="class")
    def study(self):
        data = soil_moisture_surrogate(n_train=350, n_test=50, seed=101)
        results = {}
        for variant in ("dense-fp64", "mp-dense", "mp-dense-tlr"):
            model = ExaGeoStatModel(
                kernel="matern", variant=variant, tile_size=50
            )
            model.fit(data.x_train, data.z_train,
                      theta0=data.theta_true, max_iter=40)
            results[variant] = {
                "theta": model.theta_.copy(),
                "loglik": model.loglik_,
                "mspe": model.score(data.x_test, data.z_test),
            }
        return data, results

    def test_variants_agree_on_estimates(self, study):
        _, results = study
        base = results["dense-fp64"]["theta"]
        for variant, res in results.items():
            np.testing.assert_allclose(res["theta"], base, rtol=0.15)

    def test_variants_agree_on_mspe(self, study):
        _, results = study
        base = results["dense-fp64"]["{}".format("mspe")]
        for res in results.values():
            assert res["mspe"] == pytest.approx(base, rel=0.1)

    def test_logliks_close(self, study):
        _, results = study
        base = results["dense-fp64"]["loglik"]
        for res in results.values():
            assert res["loglik"] == pytest.approx(base, abs=1.0)

    def test_mspe_sane(self, study):
        data, results = study
        for res in results.values():
            assert res["mspe"] < np.var(data.z_test)


class TestSpaceTimeStudy:
    """Mini Table II: variant agreement on the ET surrogate."""

    def test_variants_agree(self):
        data = et_surrogate(n_space=45, n_slots=6, n_test=40, seed=102)
        logliks = {}
        for variant in ("dense-fp64", "mp-dense-tlr"):
            res = loglikelihood(
                data.kernel, data.theta_true, data.x_train, data.z_train,
                tile_size=45, variant=variant, nugget=1e-8,
            )
            logliks[variant] = res.value
        assert logliks["mp-dense-tlr"] == pytest.approx(
            logliks["dense-fp64"], abs=0.5
        )


class TestModelThenSimulate:
    """The full story: fit a model, then simulate its factorization's
    task graph on a Fugaku-like machine."""

    def test_pipeline(self):
        data = soil_moisture_surrogate(n_train=300, n_test=30, seed=103)
        model = ExaGeoStatModel(variant="mp-dense-tlr", tile_size=50)
        model.set_params(data.theta_true, data.x_train, data.z_train)
        result = model._likelihood_at_fit()
        plan = result.report.plan
        tasks = list(cholesky_tasks(plan.nt))
        trace = simulate_tasks(
            tasks, plan.layout, plan, SimConfig(nodes=4, machine=A64FX)
        )
        assert trace.makespan > 0
        # Then project the same plan to paper scale.
        profile = PlanProfile.from_plan(plan)
        est = estimate_cholesky(profile, 1_000_000, 2700, A64FX, nodes=1024,
                                band_size=2)
        dense = estimate_cholesky(
            PlanProfile.dense_fp64(), 1_000_000, 2700, A64FX, nodes=1024
        )
        assert est.time_s < dense.time_s
        # Medium correlation + a coarse (nt=6) measured profile: the
        # reduction is modest; weak-correlation profiles reach ~80%.
        assert est.memory_reduction > 0.1


class TestOrderingMatters:
    def test_morton_lowers_ranks_vs_random(self):
        """The paper's 'proper ordering' claim: Morton ordering yields
        lower off-diagonal tile ranks than random ordering."""
        from repro.kernels import MaternKernel
        from repro.ordering import order_points
        from repro.tile import build_planned_covariance

        gen = np.random.default_rng(104)
        x = gen.uniform(size=(400, 2))
        kern = MaternKernel()
        theta = np.array([1.0, 0.1, 0.5])

        def mean_rank(ordering):
            xo = x[order_points(x, ordering, seed=1)]
            _, rep = build_planned_covariance(
                kern, theta, xo, 50, nugget=1e-8, use_tlr=True, band_size=1
            )
            return np.mean(list(rep.ranks.values()))

        assert mean_rank("morton") < mean_rank("random")

    def test_morton_increases_demotions_vs_random(self):
        from repro.kernels import MaternKernel
        from repro.ordering import order_points
        from repro.tile import build_planned_covariance

        gen = np.random.default_rng(105)
        x = gen.uniform(size=(400, 2))
        kern = MaternKernel()
        theta = np.array([1.0, 0.03, 0.5])

        def low_precision_tiles(ordering):
            xo = x[order_points(x, ordering, seed=2)]
            mat, _ = build_planned_covariance(
                kern, theta, xo, 50, nugget=1e-8, use_mp=True
            )
            counts = mat.structure_counts()
            return counts.get("dense/FP16", 0) + counts.get("dense/FP32", 0)

        assert low_precision_tiles("morton") >= low_precision_tiles("random")


class TestPSOTrainsModel:
    def test_pso_mle_on_small_dataset(self):
        """PSO (Section VI-D) finds parameters with likelihood close to
        the truth's likelihood."""
        from repro.data import simulate_matern_dataset
        from repro.optim import particle_swarm

        data = simulate_matern_dataset(120, "medium", seed=106)

        def batch(positions):
            out = []
            for theta in positions:
                try:
                    res = loglikelihood(
                        data.kernel, theta, data.x, data.z, tile_size=40
                    )
                    out.append(-res.value)
                except Exception:
                    out.append(np.inf)
            return out

        bounds = [(0.1, 3.0), (0.01, 0.5), (0.1, 2.0)]
        res = particle_swarm(batch, bounds, n_particles=10, max_iter=12,
                             seed=107)
        truth_nll = -loglikelihood(
            data.kernel, data.theta_true, data.x, data.z, tile_size=40
        ).value
        assert res.fun <= truth_nll + 5.0
