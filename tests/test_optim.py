"""Tests for bound transforms, Nelder-Mead, and PSO."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.kernels.base import ParameterSpec
from repro.optim import BoundTransform, nelder_mead, particle_swarm

SPECS = (
    ParameterSpec("positive", 0.0, np.inf, 1.0),
    ParameterSpec("unit", 0.0, 1.0, 0.5),
    ParameterSpec("free", -np.inf, np.inf, 0.0),
    ParameterSpec("upper", -np.inf, 2.0, 0.0),
)


class TestBoundTransform:
    def test_roundtrip(self):
        tr = BoundTransform.from_specs(SPECS)
        theta = np.array([3.5, 0.25, -7.0, 1.5])
        u = tr.to_unconstrained(theta)
        np.testing.assert_allclose(tr.to_constrained(u), theta, rtol=1e-10)

    def test_constrained_always_in_bounds(self):
        tr = BoundTransform.from_specs(SPECS)
        for u in (np.full(4, -40.0), np.full(4, 40.0), np.zeros(4)):
            theta = tr.to_constrained(u)
            assert theta[0] > 0
            assert 0 < theta[1] < 1
            assert theta[3] < 2

    def test_out_of_bounds_rejected(self):
        tr = BoundTransform.from_specs(SPECS)
        with pytest.raises(ParameterError):
            tr.to_unconstrained(np.array([-1.0, 0.5, 0.0, 0.0]))
        with pytest.raises(ParameterError):
            tr.to_unconstrained(np.array([1.0, 1.5, 0.0, 0.0]))

    def test_length_mismatch(self):
        tr = BoundTransform.from_specs(SPECS)
        with pytest.raises(ParameterError):
            tr.to_unconstrained(np.zeros(2))

    def test_extreme_u_no_overflow(self):
        tr = BoundTransform.from_specs(SPECS)
        theta = tr.to_constrained(np.full(4, 1e8))
        assert np.all(np.isfinite(theta))

    @given(
        u=st.lists(st.floats(-30, 30), min_size=4, max_size=4)
    )
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip_from_free_space(self, u):
        tr = BoundTransform.from_specs(SPECS)
        theta = tr.to_constrained(np.array(u))
        u2 = tr.to_unconstrained(theta)
        theta2 = tr.to_constrained(u2)
        np.testing.assert_allclose(theta, theta2, rtol=1e-8, atol=1e-10)


class TestNelderMead:
    def test_quadratic_bowl(self):
        res = nelder_mead(lambda x: float(np.sum((x - 3.0) ** 2)),
                          np.zeros(3), max_iter=400)
        np.testing.assert_allclose(res.x, 3.0, atol=1e-3)
        assert res.converged

    def test_rosenbrock_2d(self):
        def rosen(x):
            return float(100 * (x[1] - x[0] ** 2) ** 2 + (1 - x[0]) ** 2)

        res = nelder_mead(rosen, np.array([-1.0, 1.0]), max_iter=800,
                          fatol=1e-10, xatol=1e-8)
        np.testing.assert_allclose(res.x, [1.0, 1.0], atol=1e-2)

    def test_handles_inf_regions(self):
        """Objective returning inf on half the space (rejected MLE
        steps) must not break the simplex."""

        def fn(x):
            if x[0] < 0:
                return np.inf
            return float((x[0] - 2.0) ** 2 + x[1] ** 2)

        res = nelder_mead(fn, np.array([0.5, 0.5]), max_iter=300)
        np.testing.assert_allclose(res.x, [2.0, 0.0], atol=1e-2)

    def test_1d(self):
        res = nelder_mead(lambda x: float((x[0] + 1) ** 2), np.array([5.0]),
                          max_iter=200)
        assert res.x[0] == pytest.approx(-1.0, abs=1e-3)

    def test_max_iter_respected(self):
        res = nelder_mead(lambda x: float(np.sum(x**2)), np.ones(2), max_iter=5)
        assert res.nit <= 5
        assert not res.converged or res.nit <= 5

    def test_history_best_nonincreasing(self):
        res = nelder_mead(lambda x: float(np.sum(x**2)), np.ones(3), max_iter=50)
        assert all(b <= a + 1e-12 for a, b in zip(res.history, res.history[1:]))

    def test_nfev_counted(self):
        count = [0]

        def fn(x):
            count[0] += 1
            return float(np.sum(x**2))

        res = nelder_mead(fn, np.ones(2), max_iter=30)
        assert res.nfev == count[0]

    def test_empty_x0_rejected(self):
        with pytest.raises(ValueError):
            nelder_mead(lambda x: 0.0, np.array([]))


class TestPSO:
    def test_sphere(self):
        def batch(pos):
            return np.sum(pos**2, axis=1)

        res = particle_swarm(batch, [(-5, 5)] * 3, n_particles=20,
                             max_iter=60, seed=1)
        assert res.fun < 1e-2

    def test_respects_bounds(self):
        seen = []

        def batch(pos):
            seen.append(pos.copy())
            return np.sum(pos**2, axis=1)

        particle_swarm(batch, [(1.0, 2.0)] * 2, n_particles=8,
                       max_iter=10, seed=2)
        allpos = np.vstack(seen)
        assert np.all(allpos >= 1.0 - 1e-12)
        assert np.all(allpos <= 2.0 + 1e-12)

    def test_batch_evaluation_shape(self):
        shapes = []

        def batch(pos):
            shapes.append(pos.shape)
            return np.zeros(len(pos))

        particle_swarm(batch, [(-1, 1)] * 2, n_particles=12, max_iter=3,
                       seed=3, patience=100)
        assert all(s == (12, 2) for s in shapes)

    def test_history_nonincreasing(self):
        def batch(pos):
            return np.sum(pos**2, axis=1)

        res = particle_swarm(batch, [(-2, 2)] * 2, n_particles=10,
                             max_iter=20, seed=4)
        assert all(b <= a + 1e-12 for a, b in zip(res.history, res.history[1:]))

    def test_early_stop_on_stall(self):
        def batch(pos):
            return np.ones(len(pos))  # flat objective

        res = particle_swarm(batch, [(-1, 1)] * 2, n_particles=5,
                             max_iter=500, patience=3, seed=5)
        assert res.nit <= 10

    def test_handles_inf(self):
        def batch(pos):
            vals = np.sum(pos**2, axis=1)
            vals[pos[:, 0] < 0] = np.inf
            return vals

        res = particle_swarm(batch, [(-5, 5)] * 2, n_particles=15,
                             max_iter=40, seed=6)
        assert np.isfinite(res.fun)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            particle_swarm(lambda p: np.zeros(len(p)), [(1.0, 1.0)])

    def test_seeded_reproducible(self):
        def batch(pos):
            return np.sum((pos - 0.5) ** 2, axis=1)

        r1 = particle_swarm(batch, [(-1, 1)] * 2, n_particles=8,
                            max_iter=15, seed=7)
        r2 = particle_swarm(batch, [(-1, 1)] * 2, n_particles=8,
                            max_iter=15, seed=7)
        np.testing.assert_array_equal(r1.x, r2.x)
        assert r1.fun == r2.fun
