"""Tests for kriging prediction and uncertainty (Eqs. 4-5)."""

import numpy as np
import pytest

from repro.core import kriging_predict, loglikelihood
from repro.exceptions import ShapeError


@pytest.fixture(scope="module")
def fitted_factor(matern, theta_matern):
    from repro.data import sample_gaussian_field
    from repro.ordering import order_points

    gen = np.random.default_rng(31)
    x = gen.uniform(size=(260, 2))
    x = x[order_points(x, "morton")]
    z = sample_gaussian_field(
        matern, theta_matern, x, seed=5, jitter=1e-10
    )
    # Random holdout (a contiguous Morton-tail split would cluster all
    # test points in one corner without nearby training data).
    test_idx = np.sort(gen.permutation(260)[:40])
    train_mask = np.ones(260, dtype=bool)
    train_mask[test_idx] = False
    x_train, x_test = x[train_mask], x[test_idx]
    z_train, z_test = z[train_mask], z[test_idx]
    res = loglikelihood(
        matern, theta_matern, x_train, z_train, tile_size=40, nugget=1e-10
    )
    return x_train, z_train, x_test, z_test, res.factor


class TestPrediction:
    def test_matches_dense_reference(self, matern, theta_matern, fitted_factor):
        x_train, z_train, x_test, _, factor = fitted_factor
        pred = kriging_predict(
            matern, theta_matern, x_train, z_train, x_test, factor
        )
        sigma = matern.covariance_matrix(theta_matern, x_train, nugget=1e-10)
        cross = matern(theta_matern, x_train, x_test)
        ref = cross.T @ np.linalg.solve(sigma, z_train)
        np.testing.assert_allclose(pred.mean, ref, atol=1e-7)

    def test_better_than_trivial_predictor(
        self, matern, theta_matern, fitted_factor
    ):
        x_train, z_train, x_test, z_test, factor = fitted_factor
        pred = kriging_predict(
            matern, theta_matern, x_train, z_train, x_test, factor
        )
        mspe = np.mean((pred.mean - z_test) ** 2)
        trivial = np.mean(z_test**2)  # predicting the zero mean
        assert mspe < trivial

    def test_interpolates_training_points(self, matern, theta_matern, fitted_factor):
        """Without a nugget, kriging at a training location returns the
        observed value."""
        x_train, z_train, _, _, factor = fitted_factor
        pred = kriging_predict(
            matern, theta_matern, x_train, z_train, x_train[:10], factor
        )
        np.testing.assert_allclose(pred.mean, z_train[:10], atol=1e-4)

    def test_batching_invariance(self, matern, theta_matern, fitted_factor):
        x_train, z_train, x_test, _, factor = fitted_factor
        p1 = kriging_predict(
            matern, theta_matern, x_train, z_train, x_test, factor, batch=7
        )
        p2 = kriging_predict(
            matern, theta_matern, x_train, z_train, x_test, factor, batch=4096
        )
        np.testing.assert_allclose(p1.mean, p2.mean, atol=1e-12)

    def test_shape_checks(self, matern, theta_matern, fitted_factor):
        x_train, z_train, x_test, _, factor = fitted_factor
        with pytest.raises(ShapeError):
            kriging_predict(
                matern, theta_matern, x_train, z_train[:5], x_test, factor
            )


class TestUncertainty:
    def test_matches_dense_reference(self, matern, theta_matern, fitted_factor):
        x_train, z_train, x_test, _, factor = fitted_factor
        pred = kriging_predict(
            matern, theta_matern, x_train, z_train, x_test, factor,
            return_uncertainty=True,
        )
        sigma = matern.covariance_matrix(theta_matern, x_train, nugget=1e-10)
        cross = matern(theta_matern, x_train, x_test)
        ref = theta_matern[0] - np.einsum(
            "ij,ij->j", cross, np.linalg.solve(sigma, cross)
        )
        np.testing.assert_allclose(pred.variance, ref, atol=1e-7)

    def test_variance_bounds(self, matern, theta_matern, fitted_factor):
        x_train, z_train, x_test, _, factor = fitted_factor
        pred = kriging_predict(
            matern, theta_matern, x_train, z_train, x_test, factor,
            return_uncertainty=True,
        )
        assert np.all(pred.variance >= -1e-9)
        assert np.all(pred.variance <= theta_matern[0] + 1e-9)

    def test_zero_at_training_points(self, matern, theta_matern, fitted_factor):
        x_train, z_train, _, _, factor = fitted_factor
        pred = kriging_predict(
            matern, theta_matern, x_train, z_train, x_train[:5], factor,
            return_uncertainty=True,
        )
        np.testing.assert_allclose(pred.variance, 0.0, atol=1e-5)

    def test_standard_error_requires_uncertainty(
        self, matern, theta_matern, fitted_factor
    ):
        x_train, z_train, x_test, _, factor = fitted_factor
        pred = kriging_predict(
            matern, theta_matern, x_train, z_train, x_test, factor
        )
        with pytest.raises(ShapeError):
            pred.standard_error()

    def test_coverage_calibrated(self, matern, theta_matern, fitted_factor):
        """95% Gaussian intervals from Eq. (5) must cover roughly 95%
        of held-out truths."""
        from repro.stats import interval_coverage

        x_train, z_train, x_test, z_test, factor = fitted_factor
        pred = kriging_predict(
            matern, theta_matern, x_train, z_train, x_test, factor,
            return_uncertainty=True,
        )
        cov = interval_coverage(pred.mean, pred.standard_error(), z_test)
        assert 0.8 <= cov <= 1.0
