"""Tests for the task-graph formulation of the triangular solve."""

import numpy as np
import pytest

from repro.exceptions import SchedulingError
from repro.runtime import (
    SimConfig,
    Task,
    build_dag,
    execute_forward_solve_tasks,
    forward_solve_tasks,
    simulate_tasks,
    validate_schedule,
)
from repro.tile import build_planned_covariance, forward_solve, tile_cholesky


@pytest.fixture(scope="module")
def factored():
    from repro.kernels import MaternKernel
    from repro.ordering import order_points

    gen = np.random.default_rng(77)
    x = gen.uniform(size=(200, 2))
    x = x[order_points(x, "morton")]
    mat, rep = build_planned_covariance(
        MaternKernel(), np.array([1.0, 0.1, 0.5]), x, 40, nugget=1e-8,
        use_tlr=True, band_size=2,
    )
    fac, _ = tile_cholesky(mat, tile_tol=rep.tile_tol)
    return fac, rep


class TestSolveStream:
    def test_matches_block_solve(self, factored, rng):
        fac, _ = factored
        tasks = list(forward_solve_tasks(fac.nt))
        b = rng.standard_normal(200)
        y_stream = execute_forward_solve_tasks(fac, tasks, b)
        y_direct = forward_solve(fac, b)
        np.testing.assert_allclose(y_stream, y_direct, atol=1e-12)

    def test_multiple_rhs(self, factored, rng):
        fac, _ = factored
        tasks = list(forward_solve_tasks(fac.nt))
        b = rng.standard_normal((200, 3))
        y = execute_forward_solve_tasks(fac, tasks, b)
        np.testing.assert_allclose(y, forward_solve(fac, b), atol=1e-12)

    def test_rhs_not_mutated(self, factored, rng):
        fac, _ = factored
        b = rng.standard_normal(200)
        b0 = b.copy()
        execute_forward_solve_tasks(fac, list(forward_solve_tasks(fac.nt)), b)
        np.testing.assert_array_equal(b, b0)

    def test_dimension_mismatch(self, factored):
        fac, _ = factored
        with pytest.raises(SchedulingError):
            execute_forward_solve_tasks(
                fac, list(forward_solve_tasks(fac.nt)), np.zeros(13)
            )

    def test_rejects_foreign_ops(self, factored, rng):
        fac, _ = factored
        bad = [Task(0, "syrk", 0, output=(0, -1), inputs=((0, 0),))]
        with pytest.raises(SchedulingError):
            execute_forward_solve_tasks(fac, bad, rng.standard_normal(200))


class TestSolveDag:
    def test_sequential_chain_structure(self):
        """Row i's TRSM depends on all its GEMM updates; GEMM(i, j)
        depends on row j's TRSM (reads y_j)."""
        tasks = list(forward_solve_tasks(4))
        dag = build_dag(tasks)
        trsm = {t.output[0]: t for t in tasks if t.op == "trsm"}
        for t in tasks:
            if t.op == "gemm":
                j = t.inputs[1][0]
                assert dag.has_edge(trsm[j].uid, t.uid)

    def test_simulatable(self, factored):
        fac, rep = factored
        tasks = list(forward_solve_tasks(fac.nt))
        dag = build_dag(tasks)
        trace = simulate_tasks(
            tasks, fac.layout, rep.plan, SimConfig(nodes=2), dag=dag
        )
        start, end = trace.start_end_maps()
        validate_schedule(dag, start, end)
        assert trace.makespan > 0
