"""Tests for tiled triangular solves and logdet."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tile import (
    backward_solve,
    build_planned_covariance,
    forward_solve,
    symmetric_matvec,
    tile_apply,
    tile_cholesky,
    tile_logdet,
    DenseTile,
    LowRankTile,
)
from tests.conftest import random_spd_tilematrix


@pytest.fixture(scope="module")
def factored():
    tm = random_spd_tilematrix(70, 16, seed=9)
    dense = tm.to_dense()
    fac, _ = tile_cholesky(tm)
    return fac, dense


class TestTileApply:
    def test_dense(self, rng):
        a = rng.standard_normal((5, 4))
        x = rng.standard_normal((4, 3))
        np.testing.assert_allclose(tile_apply(DenseTile(a), x), a @ x)
        y = rng.standard_normal((5, 2))
        np.testing.assert_allclose(
            tile_apply(DenseTile(a), y, transpose=True), a.T @ y
        )

    def test_low_rank(self, rng):
        u = rng.standard_normal((5, 2))
        v = rng.standard_normal((4, 2))
        t = LowRankTile(u, v)
        x = rng.standard_normal(4)
        np.testing.assert_allclose(tile_apply(t, x), u @ v.T @ x)
        y = rng.standard_normal(5)
        np.testing.assert_allclose(
            tile_apply(t, y, transpose=True), v @ u.T @ y
        )

    def test_zero_rank(self):
        t = LowRankTile(np.zeros((5, 0)), np.zeros((4, 0)))
        out = tile_apply(t, np.ones(4))
        np.testing.assert_array_equal(out, np.zeros(5))


class TestSolves:
    def test_forward(self, factored, rng):
        fac, dense = factored
        ref = np.linalg.cholesky(dense)
        b = rng.standard_normal(70)
        y = forward_solve(fac, b)
        np.testing.assert_allclose(ref @ y, b, atol=1e-10)

    def test_backward(self, factored, rng):
        fac, dense = factored
        ref = np.linalg.cholesky(dense)
        b = rng.standard_normal(70)
        x = backward_solve(fac, b)
        np.testing.assert_allclose(ref.T @ x, b, atol=1e-10)

    def test_full_solve_residual(self, factored, rng):
        fac, dense = factored
        b = rng.standard_normal(70)
        x = backward_solve(fac, forward_solve(fac, b))
        np.testing.assert_allclose(dense @ x, b, atol=1e-9)

    def test_multiple_rhs(self, factored, rng):
        fac, dense = factored
        b = rng.standard_normal((70, 5))
        x = backward_solve(fac, forward_solve(fac, b))
        np.testing.assert_allclose(dense @ x, b, atol=1e-9)

    def test_rhs_not_mutated(self, factored, rng):
        fac, _ = factored
        b = rng.standard_normal(70)
        b0 = b.copy()
        forward_solve(fac, b)
        np.testing.assert_array_equal(b, b0)

    def test_dimension_mismatch(self, factored):
        fac, _ = factored
        with pytest.raises(ShapeError):
            forward_solve(fac, np.zeros(13))

    def test_solve_with_lr_factor(self, matern, theta_matern, locations_200, rng):
        """Solves must work when the factor holds low-rank tiles."""
        mat, report = build_planned_covariance(
            matern, theta_matern, locations_200, 40, nugget=1e-8,
            use_tlr=True, band_size=1,
        )
        sigma = matern.covariance_matrix(theta_matern, locations_200, nugget=1e-8)
        fac, _ = tile_cholesky(mat, tile_tol=report.tile_tol)
        assert any(k.startswith("lr/") for k in fac.structure_counts())
        b = rng.standard_normal(200)
        x = backward_solve(fac, forward_solve(fac, b))
        rel = np.linalg.norm(sigma @ x - b) / np.linalg.norm(b)
        assert rel < 1e-5


class TestLogdet:
    def test_matches_slogdet(self, factored):
        fac, dense = factored
        _, ref = np.linalg.slogdet(dense)
        assert tile_logdet(fac) == pytest.approx(ref, rel=1e-10)

    def test_identity_zero(self):
        from repro.tile import TileMatrix

        tm = TileMatrix.from_dense(np.eye(20), 6)
        fac, _ = tile_cholesky(tm)
        assert tile_logdet(fac) == pytest.approx(0.0, abs=1e-12)


class TestSymmetricMatvec:
    def test_matches_dense(self, rng):
        tm = random_spd_tilematrix(45, 12, seed=11)
        dense = tm.to_dense()
        x = rng.standard_normal(45)
        np.testing.assert_allclose(symmetric_matvec(tm, x), dense @ x, atol=1e-11)

    def test_with_lr_tiles(self, matern, theta_matern, locations_200, rng):
        mat, _ = build_planned_covariance(
            matern, theta_matern, locations_200, 40, nugget=1e-8,
            use_tlr=True, band_size=1,
        )
        direct = matern.covariance_matrix(theta_matern, locations_200, nugget=1e-8)
        x = rng.standard_normal(200)
        np.testing.assert_allclose(
            symmetric_matvec(mat, x), direct @ x, atol=1e-6
        )
