"""Tests for the static plan verifier (repro.analysis.plancheck)."""

import math

import numpy as np
import pytest

from repro.analysis import Severity, check_plan, plan_from_matrix
from repro.analysis.golden import GOLDEN_NTS, GOLDEN_VARIANTS, check_golden_plan
from repro.analysis.dagcheck import check_taskgraph
from repro.exceptions import PlanValidationError
from repro.kernels import MaternKernel
from repro.perfmodel import A64FX
from repro.perfmodel.crossover import crossover_rank
from repro.runtime.dag import build_dag
from repro.runtime.faults import CheckpointConfig, FaultModel
from repro.runtime.simulator import SimConfig, simulate_tasks
from repro.runtime.taskgraph import cholesky_tasks
from repro.tile import Precision, TileLayout, build_planned_covariance
from repro.tile.cholesky import tile_cholesky
from repro.tile.decisions import TilePlan
from repro.tile.tile import DenseTile


def make_plan(nt=4, b=16, band=1):
    """All-dense all-FP64 plan: clean under every rule."""
    layout = TileLayout(nt * b, b)
    return TilePlan(
        layout=layout,
        precisions={k: Precision.FP64 for k in layout.lower_tiles()},
        use_lr={k: False for k in layout.lower_tiles()},
        band_size_dense=band,
        meta={"ranks": {}},
    )


def uniform_norms(plan, value=1.0):
    return {k: value for k in plan.layout.lower_tiles()}


class TestPlan001FrobeniusBudget:
    def test_demotion_below_budget_flagged(self):
        plan = make_plan()
        plan.precisions[(2, 0)] = Precision.FP16
        rep = check_plan(plan, tile_norms=uniform_norms(plan),
                         global_norm=4.0, u_high=1e-8)
        assert [d.rule for d in rep.errors] == ["PLAN001"]
        assert rep.errors[0].tile == (2, 0)

    def test_admissible_demotion_clean(self):
        plan = make_plan()
        plan.precisions[(2, 0)] = Precision.FP16
        # Loose application accuracy: FP16's predicted storage error
        # (~5e-4 for a unit-norm tile) stays under the budget.
        rep = check_plan(plan, tile_norms=uniform_norms(plan),
                         global_norm=4.0, u_high=1e-1)
        assert "PLAN001" not in rep.rule_ids()

    def test_skipped_without_norms(self):
        plan = make_plan()
        plan.precisions[(2, 0)] = Precision.FP16
        rep = check_plan(plan, u_high=1e-8)
        assert "PLAN001" not in rep.rule_ids()


class TestPlan002Fp16Range:
    def test_guaranteed_overflow_is_error(self):
        plan = make_plan()
        plan.precisions[(1, 0)] = Precision.FP16
        norms = uniform_norms(plan)
        norms[(1, 0)] = 2.0e6  # max entry >= 2e6/16 > 65504
        rep = check_plan(plan, tile_norms=norms)
        assert [d.rule for d in rep.errors] == ["PLAN002"]

    def test_possible_overflow_is_warning(self):
        plan = make_plan()
        plan.precisions[(1, 0)] = Precision.FP16
        norms = uniform_norms(plan)
        norms[(1, 0)] = 1.0e5  # norm > 65504, but max entry may fit
        rep = check_plan(plan, tile_norms=norms)
        assert rep.ok
        assert [d.rule for d in rep.warnings] == ["PLAN002"]

    def test_variance_cap_silences_overflow_warning(self):
        plan = make_plan()
        plan.precisions[(1, 0)] = Precision.FP16
        norms = uniform_norms(plan)
        norms[(1, 0)] = 1.0e5
        rep = check_plan(plan, tile_norms=norms, variance=1.0)
        assert "PLAN002" not in rep.rule_ids()

    def test_total_underflow_is_error(self):
        plan = make_plan()
        plan.precisions[(1, 0)] = Precision.FP16
        norms = uniform_norms(plan)
        norms[(1, 0)] = 1.0e-9  # below the binary16 smallest subnormal
        rep = check_plan(plan, tile_norms=norms)
        assert [d.rule for d in rep.errors] == ["PLAN002"]

    def test_in_range_fp16_clean(self):
        plan = make_plan()
        plan.precisions[(1, 0)] = Precision.FP16
        rep = check_plan(plan, tile_norms=uniform_norms(plan))
        assert "PLAN002" not in rep.rule_ids()


class TestPlan003DiagonalPinned:
    def test_narrowed_diagonal_flagged(self):
        plan = make_plan()
        plan.precisions[(1, 1)] = Precision.FP32
        rep = check_plan(plan)
        assert [d.rule for d in rep.errors] == ["PLAN003"]
        assert rep.errors[0].tile == (1, 1)

    def test_fp64_diagonal_clean(self):
        rep = check_plan(make_plan())
        assert rep.ok and len(rep) == 0


class TestPlan004DenseBand:
    def test_tlr_inside_band_flagged(self):
        plan = make_plan(band=2)
        plan.use_lr[(1, 0)] = True  # offset 1 < band 2
        plan.meta["ranks"] = {(1, 0): 4}
        rep = check_plan(plan)
        assert [d.rule for d in rep.errors] == ["PLAN004"]

    def test_tlr_outside_band_clean(self):
        plan = make_plan(band=1)
        plan.use_lr[(2, 0)] = True
        plan.meta["ranks"] = {(2, 0): 4}
        rep = check_plan(plan)
        assert "PLAN004" not in rep.rule_ids()


class TestPlan005RankAdmissibility:
    def test_rank_above_hard_cap_flagged(self):
        plan = make_plan()
        plan.use_lr[(3, 0)] = True
        plan.meta["ranks"] = {(3, 0): 9}  # cap = 0.5 * 16 = 8
        rep = check_plan(plan)
        assert [d.rule for d in rep.errors] == ["PLAN005"]

    def test_rank_at_cap_clean(self):
        plan = make_plan()
        plan.use_lr[(3, 0)] = True
        plan.meta["ranks"] = {(3, 0): 8}
        rep = check_plan(plan)
        assert "PLAN005" not in rep.rule_ids()

    def test_perfmodel_mode_uses_crossover(self):
        xover = crossover_rank(16, A64FX, Precision.FP64)
        plan = make_plan()
        plan.use_lr[(3, 0)] = True
        plan.meta["ranks"] = {(3, 0): xover}
        rep = check_plan(plan, machine=A64FX, structure_mode="perfmodel")
        assert [d.rule for d in rep.errors] == ["PLAN005"]
        plan.meta["ranks"] = {(3, 0): xover - 1}
        rep = check_plan(plan, machine=A64FX, structure_mode="perfmodel")
        assert "PLAN005" not in rep.rule_ids()

    def test_missing_rank_is_warning(self):
        plan = make_plan()
        plan.use_lr[(3, 0)] = True
        rep = check_plan(plan)
        assert rep.ok
        assert [d.rule for d in rep.warnings] == ["PLAN005"]


class TestPlan006NoFp16Tlr:
    def test_fp16_tlr_flagged(self):
        plan = make_plan()
        plan.use_lr[(2, 0)] = True
        plan.precisions[(2, 0)] = Precision.FP16
        plan.meta["ranks"] = {(2, 0): 4}
        rep = check_plan(plan)
        assert [d.rule for d in rep.errors] == ["PLAN006"]

    def test_fp32_tlr_clean(self):
        plan = make_plan()
        plan.use_lr[(2, 0)] = True
        plan.precisions[(2, 0)] = Precision.FP32
        plan.meta["ranks"] = {(2, 0): 4}
        rep = check_plan(plan)
        assert "PLAN006" not in rep.rule_ids()


class TestPlan007MapCoverage:
    def test_upper_triangle_key_flagged(self):
        plan = make_plan()
        plan.precisions[(0, 3)] = Precision.FP64
        rep = check_plan(plan)
        assert [d.rule for d in rep.errors] == ["PLAN007"]
        assert rep.errors[0].tile == (0, 3)

    def test_missing_key_flagged(self):
        plan = make_plan()
        del plan.use_lr[(2, 1)]
        rep = check_plan(plan)
        assert [d.rule for d in rep.errors] == ["PLAN007"]

    def test_exact_lower_triangle_clean(self):
        assert "PLAN007" not in check_plan(make_plan()).rule_ids()


class TestPlan008MemoryBudget:
    def test_over_budget_flagged(self):
        rep = check_plan(make_plan(), nodes=1, node_memory_gb=1e-6)
        assert [d.rule for d in rep.errors] == ["PLAN008"]

    def test_within_budget_clean(self):
        rep = check_plan(make_plan(), nodes=1, node_memory_gb=1.0)
        assert "PLAN008" not in rep.rule_ids()


class TestPlan009Resilience:
    def test_restart_beyond_app_mtbf_is_error(self):
        faults = FaultModel(node_mtbf_s=10.0, restart_s=5.0)
        rep = check_plan(make_plan(), nodes=4, faults=faults)
        assert [d.rule for d in rep.errors] == ["PLAN009"]

    def test_checkpoint_waste_over_one_is_error(self):
        faults = FaultModel(node_mtbf_s=10.0, restart_s=5.0)
        ckpt = CheckpointConfig(interval_s=100.0, cost_s=1.0)
        rep = check_plan(make_plan(), nodes=1, faults=faults, checkpoint=ckpt)
        assert [d.rule for d in rep.errors] == ["PLAN009"]

    def test_checkpoint_waste_over_half_is_warning(self):
        faults = FaultModel(node_mtbf_s=100.0, restart_s=10.0)
        ckpt = CheckpointConfig(interval_s=50.0, cost_s=10.0)
        rep = check_plan(make_plan(), nodes=1, faults=faults, checkpoint=ckpt)
        assert rep.ok
        assert [d.rule for d in rep.warnings] == ["PLAN009"]

    def test_unprotected_long_run_is_flagged(self):
        faults = FaultModel(node_mtbf_s=100.0, restart_s=1.0)
        rep = check_plan(make_plan(), nodes=1, faults=faults,
                         estimated_runtime_s=1500.0)  # ~15 expected crashes
        assert [d.rule for d in rep.errors] == ["PLAN009"]
        rep = check_plan(make_plan(), nodes=1, faults=faults,
                         estimated_runtime_s=200.0)  # ~2 expected crashes
        assert rep.ok
        assert [d.rule for d in rep.warnings] == ["PLAN009"]

    def test_benign_regime_clean(self):
        faults = FaultModel(node_mtbf_s=500.0, restart_s=30.0)
        ckpt = CheckpointConfig(interval_s=200.0, cost_s=20.0)
        rep = check_plan(make_plan(), nodes=1, faults=faults, checkpoint=ckpt)
        assert "PLAN009" not in rep.rule_ids()

    def test_infinite_mtbf_skipped(self):
        faults = FaultModel(node_mtbf_s=math.inf, restart_s=30.0)
        rep = check_plan(make_plan(), nodes=1, faults=faults,
                         estimated_runtime_s=1e9)
        assert "PLAN009" not in rep.rule_ids()


class TestPlan010BandSize:
    def test_zero_band_flagged(self):
        plan = make_plan()
        plan.band_size_dense = 0
        rep = check_plan(plan)
        assert [d.rule for d in rep.errors] == ["PLAN010"]

    def test_unit_band_clean(self):
        assert "PLAN010" not in check_plan(make_plan(band=1)).rule_ids()


class TestPlanFromMatrix:
    def build(self, use_mp=True, use_tlr=False):
        gen = np.random.default_rng(7)
        x = gen.uniform(size=(64, 2))
        return build_planned_covariance(
            MaternKernel(), np.array([1.0, 0.1, 0.5]), x, 16,
            nugget=1e-8, use_mp=use_mp, use_tlr=use_tlr,
        )

    def test_roundtrip_matches_stored_tiles(self):
        matrix, rep = self.build()
        plan = plan_from_matrix(matrix)
        for key in plan.layout.lower_tiles():
            assert plan.precisions[key] is matrix.get(*key).precision
            assert plan.use_lr[key] == matrix.get(*key).is_low_rank

    def test_reconstructed_plan_checks_clean(self):
        matrix, _ = self.build()
        assert check_plan(plan_from_matrix(matrix)).ok


class TestValidatePlanHooks:
    def build_matrix(self):
        gen = np.random.default_rng(11)
        x = gen.uniform(size=(64, 2))
        matrix, rep = build_planned_covariance(
            MaternKernel(), np.array([1.0, 0.1, 0.5]), x, 16,
            nugget=1e-8, use_mp=True,
        )
        return matrix, rep

    def test_cholesky_precheck_passes_clean_matrix(self):
        matrix, _ = self.build_matrix()
        _, stats = tile_cholesky(matrix, validate_plan=True)
        assert stats.kernel_counts["potrf"] == 4

    def test_cholesky_precheck_rejects_narrowed_diagonal(self):
        matrix, _ = self.build_matrix()
        d = matrix.get(0, 0)
        matrix.set(0, 0, DenseTile(d.to_dense64(), Precision.FP16))
        with pytest.raises(PlanValidationError) as exc:
            tile_cholesky(matrix, validate_plan=True)
        assert "PLAN003" in exc.value.report.rule_ids()

    def test_simulator_precheck_passes_clean_plan(self):
        _, rep = self.build_matrix()
        tasks = list(cholesky_tasks(4))
        trace = simulate_tasks(tasks, rep.plan.layout, rep.plan,
                               SimConfig(nodes=1), validate_plan=True)
        assert len(trace.records) == len(tasks)

    def test_simulator_precheck_rejects_bad_plan(self):
        _, rep = self.build_matrix()
        rep.plan.precisions[(0, 0)] = Precision.FP16
        tasks = list(cholesky_tasks(4))
        with pytest.raises(PlanValidationError) as exc:
            simulate_tasks(tasks, rep.plan.layout, rep.plan,
                           SimConfig(nodes=1), validate_plan=True)
        assert "PLAN003" in exc.value.report.rule_ids()


class TestSeededDefects:
    def test_three_seeded_defects_yield_exactly_three_rules(self):
        """A plan with a demoted-below-bound tile and a dense-band TLR
        tile, plus a DAG with one dropped dependence edge, must yield
        exactly PLAN001 + PLAN004 + DAG003."""
        plan = make_plan(band=2)
        plan.precisions[(2, 0)] = Precision.FP16  # demoted below budget
        plan.use_lr[(1, 0)] = True                # TLR inside dense band
        plan.meta["ranks"] = {(1, 0): 4}
        report = check_plan(plan, tile_norms=uniform_norms(plan),
                            global_norm=4.0, u_high=1e-8)

        tasks = list(cholesky_tasks(4))
        dag = build_dag(tasks)
        potrf0 = next(t for t in tasks if t.op == "potrf" and t.k == 0)
        trsm10 = next(t for t in tasks if t.op == "trsm"
                      and t.output == (1, 0))
        dag.remove_edge(potrf0.uid, trsm10.uid)  # dropped RAW edge
        report.extend(check_taskgraph(tasks, dag, layout=plan.layout))

        assert report.rule_ids() == ["DAG003", "PLAN001", "PLAN004"]
        assert not report.ok


class TestGoldenPlans:
    @pytest.mark.parametrize("variant", GOLDEN_VARIANTS)
    @pytest.mark.parametrize("nt", GOLDEN_NTS)
    def test_shipped_variant_analyzes_clean(self, variant, nt):
        report = check_golden_plan(variant, nt)
        assert report.ok, report.render_text(min_severity=Severity.ERROR)
