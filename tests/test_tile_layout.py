"""Tests for TileLayout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.tile import TileLayout


class TestTileLayout:
    def test_even_split(self):
        lay = TileLayout(100, 25)
        assert lay.nt == 4
        assert [lay.block_size(i) for i in range(4)] == [25] * 4

    def test_ragged_last_block(self):
        lay = TileLayout(100, 30)
        assert lay.nt == 4
        assert lay.block_size(3) == 10

    def test_block_range(self):
        lay = TileLayout(10, 4)
        assert lay.block_range(0) == (0, 4)
        assert lay.block_range(2) == (8, 10)

    def test_tile_shape(self):
        lay = TileLayout(10, 4)
        assert lay.tile_shape(2, 0) == (2, 4)

    def test_block_of(self):
        lay = TileLayout(10, 4)
        assert lay.block_of(0) == 0
        assert lay.block_of(9) == 2
        with pytest.raises(ShapeError):
            lay.block_of(10)

    def test_block_sizes_sum_to_n(self):
        lay = TileLayout(103, 17)
        assert lay.block_sizes().sum() == 103

    def test_lower_tiles_count(self):
        lay = TileLayout(50, 10)
        tiles = lay.lower_tiles()
        assert len(tiles) == 15
        assert all(j <= i for i, j in tiles)

    def test_tile_size_one(self):
        lay = TileLayout(5, 1)
        assert lay.nt == 5

    def test_tile_larger_than_matrix(self):
        lay = TileLayout(5, 100)
        assert lay.nt == 1
        assert lay.block_size(0) == 5

    def test_invalid_args(self):
        with pytest.raises(ShapeError):
            TileLayout(0, 4)
        with pytest.raises(ShapeError):
            TileLayout(4, 0)

    def test_out_of_range_block(self):
        lay = TileLayout(10, 4)
        with pytest.raises(ShapeError):
            lay.block_size(3)

    @given(n=st.integers(1, 500), b=st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_property_blocks_partition(self, n, b):
        lay = TileLayout(n, b)
        covered = np.zeros(n, dtype=bool)
        for i in range(lay.nt):
            s = lay.block_slice(i)
            assert not covered[s].any()
            covered[s] = True
        assert covered.all()
