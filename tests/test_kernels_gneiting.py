"""Unit + property tests for the Gneiting space-time kernel (Eq. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError, ShapeError
from repro.kernels import temporal_decay
from repro.kernels.matern import matern_correlation

THETA = np.array([1.0, 0.5, 0.8, 0.7, 0.6, 0.4])


def st_grid(n_space=5, n_slots=3, seed=0):
    gen = np.random.default_rng(seed)
    space = gen.uniform(size=(n_space, 2))
    return np.vstack(
        [np.column_stack([space, np.full(n_space, float(t))]) for t in range(n_slots)]
    )


class TestTemporalDecay:
    def test_one_at_zero_lag(self):
        assert temporal_decay(np.array([0.0]), 2.0, 0.7)[0] == 1.0

    def test_monotone_in_lag(self):
        u = np.linspace(0, 5, 50)
        psi = temporal_decay(u, 1.5, 0.8)
        assert np.all(np.diff(psi) >= 0.0)

    def test_closed_form(self):
        u = np.array([2.0])
        psi = temporal_decay(u, 3.0, 0.5)
        assert psi[0] == pytest.approx(3.0 * 2.0 + 1.0)


class TestGneitingKernel:
    def test_param_count(self, gneiting):
        assert gneiting.nparams == 6
        assert gneiting.param_names[0] == "variance"
        assert gneiting.param_names[5] == "beta"

    def test_needs_three_columns(self, gneiting):
        with pytest.raises(ShapeError):
            gneiting(THETA, np.zeros((4, 2)))

    def test_variance_on_diagonal(self, gneiting):
        x = st_grid()
        c = gneiting.covariance_matrix(THETA, x)
        np.testing.assert_allclose(np.diag(c), THETA[0], rtol=1e-12)

    def test_symmetric(self, gneiting):
        x = st_grid()
        c = gneiting.covariance_matrix(THETA, x)
        np.testing.assert_allclose(c, c.T, atol=1e-14)

    def test_positive_definite_in_validity_region(self, gneiting):
        x = st_grid(8, 4)
        c = gneiting.covariance_matrix(THETA, x)
        assert np.linalg.eigvalsh(c).min() > 0.0

    def test_separable_at_beta_zero_factorizes(self, gneiting):
        """At beta = 0, C(h, u) = C_s(h) * C_t(u)."""
        theta = THETA.copy()
        theta[5] = 0.0
        x1 = np.array([[0.1, 0.2, 0.0]])
        x2 = np.array([[0.4, 0.6, 2.0]])
        c = gneiting(theta, x1, x2)[0, 0]
        h = np.linalg.norm([0.3, 0.4])
        spatial = gneiting.spatial_margin(theta, np.array([h]))[0]
        temporal = gneiting.temporal_margin(theta, np.array([2.0]))[0]
        assert c == pytest.approx(spatial * temporal / theta[0], rel=1e-12)

    def test_is_separable_flag(self, gneiting):
        theta = THETA.copy()
        assert not gneiting.is_separable(theta)
        theta[5] = 0.0
        assert gneiting.is_separable(theta)

    def test_nonseparability_changes_cross_terms(self, gneiting):
        """beta > 0 must change covariance at nonzero (h, u) lags."""
        x1 = np.array([[0.0, 0.0, 0.0]])
        x2 = np.array([[0.3, 0.0, 1.0]])
        theta0 = THETA.copy()
        theta0[5] = 0.0
        theta1 = THETA.copy()
        theta1[5] = 1.0
        c0 = gneiting(theta0, x1, x2)[0, 0]
        c1 = gneiting(theta1, x1, x2)[0, 0]
        assert c0 != pytest.approx(c1, rel=1e-6)

    def test_spatial_margin_is_matern(self, gneiting):
        h = np.linspace(0, 2, 10)
        margin = gneiting.spatial_margin(THETA, h)
        expected = THETA[0] * matern_correlation(h / THETA[1], THETA[2])
        np.testing.assert_allclose(margin, expected, rtol=1e-12)

    def test_rejects_alpha_above_validity(self, gneiting):
        theta = THETA.copy()
        theta[4] = 3.49  # the paper's fitted value, outside (0, 1]
        with pytest.raises(ParameterError):
            gneiting.validate_theta(theta)

    def test_decay_in_time(self, gneiting):
        base = np.array([[0.5, 0.5, 0.0]])
        lags = [gneiting(THETA, base, np.array([[0.5, 0.5, float(t)]]))[0, 0]
                for t in range(5)]
        assert all(a > b for a, b in zip(lags, lags[1:]))

    @given(
        beta=st.floats(0.0, 1.0),
        alpha=st.floats(0.1, 1.0),
        u=st.floats(0.0, 5.0),
        h=st.floats(0.0, 5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_variance(self, gneiting, beta, alpha, u, h):
        theta = np.array([2.0, 0.5, 0.8, 0.7, alpha, beta])
        x1 = np.array([[0.0, 0.0, 0.0]])
        x2 = np.array([[h, 0.0, u]])
        c = gneiting(theta, x1, x2)[0, 0]
        assert -1e-12 <= c <= 2.0 + 1e-12
