"""Unit + property tests for the Matérn kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.kernels import MaternKernel, matern_correlation


class TestMaternCorrelation:
    def test_one_at_zero(self):
        for nu in (0.3, 0.5, 1.0, 1.5, 2.5, 3.7):
            assert matern_correlation(np.array([0.0]), nu)[0] == 1.0

    def test_closed_form_half(self):
        r = np.linspace(0.01, 5.0, 40)
        np.testing.assert_allclose(
            matern_correlation(r, 0.5), np.exp(-r), rtol=1e-12
        )

    def test_closed_form_three_half(self):
        r = np.linspace(0.01, 5.0, 40)
        np.testing.assert_allclose(
            matern_correlation(r, 1.5), (1 + r) * np.exp(-r), rtol=1e-12
        )

    def test_generic_matches_closed_form(self):
        """The Bessel path at nu just off 1/2 must approach exp(-r)."""
        r = np.linspace(0.05, 3.0, 20)
        generic = matern_correlation(r, 0.5 + 1e-7)
        np.testing.assert_allclose(generic, np.exp(-r), rtol=1e-4)

    def test_generic_matches_closed_form_25(self):
        r = np.linspace(0.05, 3.0, 20)
        generic = matern_correlation(r, 2.5 + 1e-8)
        closed = (1 + r + r * r / 3) * np.exp(-r)
        np.testing.assert_allclose(generic, closed, rtol=1e-5)

    def test_monotone_decreasing(self):
        r = np.linspace(0.0, 10.0, 200)
        for nu in (0.44, 1.0, 2.0):
            c = matern_correlation(r, nu)
            assert np.all(np.diff(c) <= 1e-12)

    def test_no_overflow_large_argument(self):
        c = matern_correlation(np.array([1e4]), 0.44)
        assert c[0] == 0.0 or c[0] < 1e-300

    def test_no_underflow_small_argument(self):
        c = matern_correlation(np.array([1e-12]), 0.44)
        assert 0.9 < c[0] <= 1.0

    def test_rejects_nonpositive_smoothness(self):
        with pytest.raises(ValueError):
            matern_correlation(np.array([1.0]), 0.0)

    @given(
        nu=st.floats(0.05, 4.5),
        r=st.floats(0.0, 50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_zero_one(self, nu, r):
        c = matern_correlation(np.array([r]), nu)[0]
        assert 0.0 <= c <= 1.0

    @given(nu=st.floats(0.1, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_smoother_decays_slower_at_small_distance(self, nu):
        """At small arguments, larger smoothness keeps correlation
        higher (flatter at the origin)."""
        r = np.array([0.05])
        assert matern_correlation(r, nu + 0.5)[0] >= (
            matern_correlation(r, nu)[0] - 1e-9
        )


class TestMaternKernel:
    def test_param_names(self, matern):
        assert matern.param_names == ("variance", "range", "smoothness")

    def test_diagonal_is_variance(self, matern, rng):
        x = rng.uniform(size=(30, 2))
        theta = np.array([2.5, 0.2, 1.5])
        c = matern.covariance_matrix(theta, x)
        np.testing.assert_allclose(np.diag(c), 2.5, rtol=1e-12)

    def test_symmetric(self, matern, rng):
        x = rng.uniform(size=(25, 2))
        c = matern.covariance_matrix(np.array([1.0, 0.1, 0.5]), x)
        np.testing.assert_allclose(c, c.T)

    def test_positive_definite_with_distinct_points(self, matern, rng):
        x = rng.uniform(size=(60, 2))
        c = matern.covariance_matrix(np.array([1.0, 0.15, 0.8]), x)
        w = np.linalg.eigvalsh(c)
        assert w.min() > 0.0

    def test_equals_exponential_at_half(self, matern, rng):
        from repro.kernels import ExponentialKernel

        x = rng.uniform(size=(20, 2))
        c1 = matern(np.array([1.3, 0.2, 0.5]), x)
        c2 = ExponentialKernel()(np.array([1.3, 0.2]), x)
        np.testing.assert_allclose(c1, c2, rtol=1e-12)

    def test_cross_covariance_shape(self, matern, rng):
        x1 = rng.uniform(size=(7, 2))
        x2 = rng.uniform(size=(11, 2))
        assert matern(np.array([1.0, 0.1, 0.5]), x1, x2).shape == (7, 11)

    def test_rejects_bad_theta(self, matern, rng):
        x = rng.uniform(size=(4, 2))
        with pytest.raises(ParameterError):
            matern(np.array([-1.0, 0.1, 0.5]), x)
        with pytest.raises(ParameterError):
            matern(np.array([1.0, 0.1]), x)

    def test_nugget_only_on_zero_distance(self, rng):
        kern = MaternKernel(nugget=0.5)
        x = rng.uniform(size=(10, 2))
        theta = np.array([1.0, 0.1, 0.5])
        c = kern(theta, x, x)
        assert c[0, 0] == pytest.approx(1.5)
        assert c[0, 1] < 1.0

    def test_correlation_at_classifies_fig6_settings(self, matern):
        """Weak range 0.03 decays faster than strong range 0.3."""
        weak = matern.correlation_at(np.array([1.0, 0.03, 0.5]), 0.1)
        strong = matern.correlation_at(np.array([1.0, 0.3, 0.5]), 0.1)
        assert weak < 0.1 < strong

    def test_default_theta_valid(self, matern):
        matern.validate_theta(matern.default_theta())
