"""Tests for Algorithm 2 (band_size_dense auto-tuning)."""

import pytest

from repro.perfmodel import A64FX, crossover_rank
from repro.tile import Precision, TileLayout, autotune_band_size, subdiagonal_times


def uniform_ranks(layout, rank):
    return {
        (i, j): rank for i, j in layout.lower_tiles() if i != j
    }


def fp64(layout):
    return {k: Precision.FP64 for k in layout.lower_tiles()}


@pytest.fixture(scope="module")
def big_layout():
    # Paper-scale tile size so the crossover regime is meaningful.
    return TileLayout(20 * 2700, 2700)


class TestSubdiagonalTimes:
    def test_positive_times(self, big_layout):
        dense_t, tlr_t = subdiagonal_times(
            big_layout, 1, uniform_ranks(big_layout, 100), fp64(big_layout), A64FX
        )
        assert dense_t > 0 and tlr_t > 0

    def test_low_rank_makes_tlr_cheaper(self, big_layout):
        _, tlr_low = subdiagonal_times(
            big_layout, 2, uniform_ranks(big_layout, 20), fp64(big_layout), A64FX
        )
        _, tlr_high = subdiagonal_times(
            big_layout, 2, uniform_ranks(big_layout, 800), fp64(big_layout), A64FX
        )
        assert tlr_low < tlr_high

    def test_gemm_count_grows_with_band(self, big_layout):
        """Later sub-diagonals accumulate more GEMM updates per tile at
        small offsets: dense time at offset 1 exceeds offset nt-1."""
        ranks = uniform_ranks(big_layout, 50)
        d1, _ = subdiagonal_times(big_layout, 1, ranks, fp64(big_layout), A64FX)
        dlast, _ = subdiagonal_times(
            big_layout, big_layout.nt - 1, ranks, fp64(big_layout), A64FX
        )
        assert d1 > dlast


class TestAutotune:
    def test_high_ranks_grow_band(self, big_layout):
        """Ranks above the crossover everywhere -> dense always wins ->
        band grows to the cap."""
        xover = crossover_rank(2700, A64FX)
        ranks = uniform_ranks(big_layout, min(2 * xover, 2699))
        band = autotune_band_size(
            big_layout, ranks, fp64(big_layout), A64FX, max_band=6
        )
        assert band == 6

    def test_low_ranks_keep_band_small(self, big_layout):
        ranks = uniform_ranks(big_layout, 10)
        band = autotune_band_size(big_layout, ranks, fp64(big_layout), A64FX)
        assert band <= 2

    def test_decaying_ranks_intermediate_band(self, big_layout):
        """Ranks decaying with offset stop the band where TLR starts
        winning."""
        xover = crossover_rank(2700, A64FX)
        ranks = {}
        for i, j in big_layout.lower_tiles():
            if i == j:
                continue
            off = i - j
            ranks[(i, j)] = max(5, int(2 * xover / off))
        band = autotune_band_size(big_layout, ranks, fp64(big_layout), A64FX)
        assert 1 < band < big_layout.nt

    def test_fluctuation_monotone(self, big_layout):
        """A larger fluctuation tolerance can only grow the band."""
        xover = crossover_rank(2700, A64FX)
        ranks = {}
        for i, j in big_layout.lower_tiles():
            if i != j:
                ranks[(i, j)] = max(5, int(1.5 * xover / (i - j)))
        bands = [
            autotune_band_size(
                big_layout, ranks, fp64(big_layout), A64FX, fluctuation=f
            )
            for f in (0.5, 1.0, 2.0)
        ]
        assert bands == sorted(bands)

    def test_invalid_fluctuation(self, big_layout):
        with pytest.raises(ValueError):
            autotune_band_size(big_layout, {}, fp64(big_layout), A64FX,
                               fluctuation=0.0)

    def test_band_at_least_one(self, big_layout):
        ranks = uniform_ranks(big_layout, 1)
        band = autotune_band_size(big_layout, ranks, fp64(big_layout), A64FX)
        assert band >= 1
