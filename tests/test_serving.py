"""Tests for the batched prediction serving path (PR 4).

Covers three layers:

* :class:`~repro.tile.solve.PanelSolver` — multi-RHS blocked solves
  bit-identical to the seed per-call implementation (preserved below
  as ``ref_forward`` / ``ref_backward``), cast amortization, panel
  ``apply_lower`` and ``logdet``;
* :class:`~repro.core.serving.PredictionEngine` — invariance of
  repeated / streamed / thread-parallel predicts, cross-value cache,
  weight-solve amortization, seeded simulation;
* model wiring — content-hash invalidation on ``set_params``/``fit``
  and the negative-variance clamp at the source.
"""

import logging

import numpy as np
import pytest
from scipy import linalg as sla

from repro.core import PredictionEngine, clamp_variance, kriging_predict
from repro.core.variants import get_variant
from repro.exceptions import ShapeError
from repro.tile import (
    PanelSolver,
    apply_lower,
    backward_solve,
    build_planned_covariance,
    forward_solve,
    tile_apply,
    tile_cholesky,
    tile_logdet,
)
from tests.conftest import random_spd_tilematrix


# ----------------------------------------------------------------------
# The seed (pre-serving-engine) solve path, preserved verbatim as the
# bit-identity reference: per-call block substitution through
# ``tile_apply`` with a fresh float64 up-cast of every tile.
# ----------------------------------------------------------------------
def ref_forward(l_matrix, b):
    y = np.asarray(b, dtype=np.float64).copy()
    layout = l_matrix.layout
    for i in range(layout.nt):
        sl_i = layout.block_slice(i)
        acc = y[sl_i]
        for j in range(i):
            acc -= tile_apply(l_matrix.get(i, j), y[layout.block_slice(j)])
        lii = l_matrix.get(i, i).to_dense64()
        y[sl_i] = sla.solve_triangular(lii, acc, lower=True, check_finite=False)
    return y


def ref_backward(l_matrix, y):
    x = np.asarray(y, dtype=np.float64).copy()
    layout = l_matrix.layout
    for i in range(layout.nt - 1, -1, -1):
        sl_i = layout.block_slice(i)
        acc = x[sl_i]
        for j in range(i + 1, layout.nt):
            acc -= tile_apply(
                l_matrix.get(j, i), x[layout.block_slice(j)], transpose=True
            )
        lii = l_matrix.get(i, i).to_dense64()
        x[sl_i] = sla.solve_triangular(
            lii, acc, lower=True, trans="T", check_finite=False
        )
    return x


@pytest.fixture(scope="module")
def dense_factor():
    tm = random_spd_tilematrix(70, 16, seed=9)
    dense = tm.to_dense()  # before factoring: tile_cholesky works in place
    fac, _ = tile_cholesky(tm)
    return fac, dense


@pytest.fixture(scope="module")
def tlr_factor(matern, theta_matern, locations_200):
    mat, report = build_planned_covariance(
        matern, theta_matern, locations_200, 40, nugget=1e-8,
        use_tlr=True, band_size=1,
    )
    fac, _ = tile_cholesky(mat, tile_tol=report.tile_tol)
    assert any(k.startswith("lr/") for k in fac.structure_counts())
    return fac


class TestPanelSolverBitIdentity:
    """The rewrite must not change a single bit of dense-FP64 output."""

    @pytest.mark.parametrize("shape", [(70,), (70, 1), (70, 17)])
    def test_dense_fp64(self, dense_factor, rng, shape):
        fac, _ = dense_factor
        b = rng.standard_normal(shape)
        np.testing.assert_array_equal(forward_solve(fac, b), ref_forward(fac, b))
        np.testing.assert_array_equal(backward_solve(fac, b), ref_backward(fac, b))

    @pytest.mark.parametrize("shape", [(200,), (200, 5)])
    def test_lr_factor(self, tlr_factor, rng, shape):
        """Bit-identity holds through low-rank (and rank-0) tiles too."""
        b = rng.standard_normal(shape)
        np.testing.assert_array_equal(
            forward_solve(tlr_factor, b), ref_forward(tlr_factor, b)
        )
        np.testing.assert_array_equal(
            backward_solve(tlr_factor, b), ref_backward(tlr_factor, b)
        )

    def test_repeated_solver_calls_identical(self, dense_factor, rng):
        fac, _ = dense_factor
        solver = PanelSolver(fac)
        b = rng.standard_normal((70, 3))
        first = solver.solve(b)
        np.testing.assert_array_equal(solver.solve(b), first)
        np.testing.assert_array_equal(
            first, ref_backward(fac, ref_forward(fac, b))
        )


class TestPanelSolver:
    def test_casts_amortize_to_stored_tiles(self, dense_factor, rng):
        fac, _ = dense_factor
        solver = PanelSolver(fac)
        for _ in range(4):
            solver.solve(rng.standard_normal(70))
        assert solver.casts == len(fac.keys())
        assert solver.solves == 8  # 4 forward + 4 backward sweeps

    def test_solve_accuracy_within_variant_budget(
        self, matern, theta_matern, locations_200, rng
    ):
        """TLR-factor solves stay within the variant's Frobenius
        accuracy budget (amplified by a generous condition factor)."""
        cfg = get_variant("mp-dense-tlr")
        mat, report = build_planned_covariance(
            matern, theta_matern, locations_200, 40,
            nugget=1e-8, **cfg.assembly_kwargs(),
        )
        fac, _ = tile_cholesky(mat, tile_tol=report.tile_tol)
        sigma = matern.covariance_matrix(theta_matern, locations_200, nugget=1e-8)
        b = rng.standard_normal((200, 4))
        x = PanelSolver(fac).solve(b)
        rel = np.linalg.norm(sigma @ x - b) / np.linalg.norm(b)
        assert rel < 1.0e3 * cfg.mp_accuracy

    def test_apply_lower_matches_dense(self, dense_factor, rng):
        fac, dense = dense_factor
        ell = np.linalg.cholesky(dense)
        v = rng.standard_normal((70, 6))
        np.testing.assert_allclose(apply_lower(fac, v), ell @ v, atol=1e-9)
        # Round-trip: apply then forward-solve is the identity.
        solver = PanelSolver(fac)
        np.testing.assert_allclose(
            solver.forward(solver.apply_lower(v)), v, atol=1e-9
        )

    def test_logdet_matches_tile_logdet(self, dense_factor):
        fac, dense = dense_factor
        assert PanelSolver(fac).logdet() == pytest.approx(
            tile_logdet(fac), rel=1e-14
        )

    def test_shape_errors(self, dense_factor):
        fac, _ = dense_factor
        solver = PanelSolver(fac)
        with pytest.raises(ShapeError):
            solver.forward(np.zeros(13))
        with pytest.raises(ShapeError):
            solver.apply_lower(np.zeros(13))


# ----------------------------------------------------------------------
# PredictionEngine
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serving_setup(matern, theta_matern, locations_200, spd_dense_200):
    _, z = spd_dense_200
    cfg = get_variant("mp-dense-tlr")
    mat, report = build_planned_covariance(
        matern, theta_matern, locations_200, 40,
        nugget=1e-8, **cfg.assembly_kwargs(),
    )
    fac, _ = tile_cholesky(mat, tile_tol=report.tile_tol)
    gen = np.random.default_rng(100)
    x_test = gen.uniform(size=(57, 2))
    return matern, theta_matern, locations_200, z, fac, x_test


class TestPredictionEngine:
    def test_weights_solved_once(self, serving_setup):
        kern, theta, x, z, fac, x_test = serving_setup
        engine = PredictionEngine(kern, theta, x, z, fac)
        for _ in range(3):
            engine.predict(x_test, return_uncertainty=True)
        stats = engine.stats()
        assert stats.weight_solves == 1
        assert stats.tile_casts == len(fac.keys())
        assert stats.cross_hits >= 2

    def test_repeated_predicts_bit_identical(self, serving_setup):
        kern, theta, x, z, fac, x_test = serving_setup
        engine = PredictionEngine(kern, theta, x, z, fac)
        p1 = engine.predict(x_test, return_uncertainty=True)
        p2 = engine.predict(x_test, return_uncertainty=True)
        np.testing.assert_array_equal(p1.mean, p2.mean)
        np.testing.assert_array_equal(p1.variance, p2.variance)

    def test_stream_matches_batch(self, serving_setup):
        kern, theta, x, z, fac, x_test = serving_setup
        engine = PredictionEngine(kern, theta, x, z, fac)
        p = engine.predict(x_test, return_uncertainty=True, batch=16)
        chunks = list(
            engine.predict_iter(x_test, return_uncertainty=True, batch=16)
        )
        assert all(len(c.mean) <= 16 for c in chunks)
        np.testing.assert_array_equal(
            np.concatenate([c.mean for c in chunks]), p.mean
        )
        np.testing.assert_array_equal(
            np.concatenate([c.variance for c in chunks]), p.variance
        )

    def test_parallel_matches_sequential(self, serving_setup):
        kern, theta, x, z, fac, x_test = serving_setup
        engine = PredictionEngine(kern, theta, x, z, fac)
        seq = engine.predict(x_test, return_uncertainty=True, batch=8)
        par = engine.predict(
            x_test, return_uncertainty=True, batch=8, workers=4
        )
        np.testing.assert_array_equal(seq.mean, par.mean)
        np.testing.assert_array_equal(seq.variance, par.variance)

    def test_matches_kriging_predict(self, serving_setup):
        """The one-shot wrapper and a held engine serve the same
        numbers (same batch split, same arithmetic)."""
        kern, theta, x, z, fac, x_test = serving_setup
        engine = PredictionEngine(kern, theta, x, z, fac, batch=32)
        held = engine.predict(x_test, return_uncertainty=True)
        ones = kriging_predict(
            kern, theta, x, z, x_test, fac,
            return_uncertainty=True, batch=32,
        )
        np.testing.assert_array_equal(held.mean, ones.mean)
        np.testing.assert_array_equal(held.variance, ones.variance)

    def test_cross_cache_respects_byte_budget(self, serving_setup):
        kern, theta, x, z, fac, x_test = serving_setup
        budget = 2 * 200 * 16 * 8  # roughly two 16-wide cross panels
        engine = PredictionEngine(
            kern, theta, x, z, fac, batch=16, cross_cache_bytes=budget
        )
        engine.predict(x_test)
        assert engine.stats().cross_cache_bytes <= budget

    def test_variance_nonnegative_at_training_points(self, serving_setup):
        """Predicting at training locations drives Eq. 5 to ~0 where
        TLR rounding can push it negative; the clamp keeps it at 0."""
        kern, theta, x, z, fac, _ = serving_setup
        engine = PredictionEngine(kern, theta, x, z, fac)
        pred = engine.predict(x[:64], return_uncertainty=True)
        assert np.all(pred.variance >= 0.0)
        assert np.all(np.isfinite(pred.standard_error()))

    def test_simulate_seeded_reproducible(self, serving_setup):
        kern, theta, x, z, fac, x_test = serving_setup
        engine = PredictionEngine(kern, theta, x, z, fac)
        d1 = engine.simulate(x_test, size=3, seed=11)
        d2 = engine.simulate(x_test, size=3, seed=11)
        np.testing.assert_array_equal(d1, d2)
        assert d1.shape == (3, len(x_test))

    def test_shape_validation(self, serving_setup):
        kern, theta, x, z, fac, _ = serving_setup
        with pytest.raises(ShapeError):
            PredictionEngine(kern, theta, x, z[:-1], fac)
        with pytest.raises(ShapeError):
            PredictionEngine(kern, theta, x[:-1], z[:-1], fac)
        engine = PredictionEngine(kern, theta, x, z, fac)
        with pytest.raises(ShapeError):
            engine.score(np.zeros((5, 2)), np.zeros(4))


# ----------------------------------------------------------------------
# clamp + model wiring
# ----------------------------------------------------------------------
class TestClampVariance:
    def test_counts_and_clamps(self, caplog):
        v = np.array([0.5, -1e-12, 0.0, -3e-9])
        with caplog.at_level(logging.DEBUG, logger="repro.core.prediction"):
            out, count = clamp_variance(v, where="unit-test")
        assert count == 2
        np.testing.assert_array_equal(out, [0.5, 0.0, 0.0, 0.0])
        assert any("unit-test" in r.message for r in caplog.records)

    def test_clean_input_untouched(self, caplog):
        v = np.array([0.5, 0.1])
        with caplog.at_level(logging.DEBUG, logger="repro.core.prediction"):
            out, count = clamp_variance(v)
        assert count == 0
        assert out is v  # no copy on the clean path
        assert not caplog.records


class TestModelServingWiring:
    @pytest.fixture()
    def fitted_model(self, locations_200, spd_dense_200, theta_matern):
        from repro import ExaGeoStatModel

        _, z = spd_dense_200
        model = ExaGeoStatModel(
            kernel="matern", variant="mp-dense-tlr", tile_size=40,
            nugget=1e-8,
        )
        model.set_params(theta_matern, locations_200, z)
        return model

    def test_engine_built_once_per_state(self, fitted_model, rng):
        x_new = rng.uniform(size=(20, 2))
        fitted_model.predict(x_new)
        fitted_model.predict(x_new, return_uncertainty=True)
        fitted_model.score(x_new, rng.standard_normal(20))
        assert fitted_model._engine_builds == 1
        assert fitted_model.serving_engine().stats().weight_solves == 1

    def test_set_params_invalidates(self, fitted_model, rng, theta_matern,
                                    locations_200, spd_dense_200):
        _, z = spd_dense_200
        x_new = rng.uniform(size=(10, 2))
        p_old = fitted_model.predict(x_new)
        fitted_model.set_params(theta_matern * 1.5, locations_200, z)
        p_new = fitted_model.predict(x_new)
        assert fitted_model._engine_builds == 2
        assert not np.array_equal(p_old.mean, p_new.mean)
        # Restoring the original state serves the original numbers.
        fitted_model.set_params(theta_matern, locations_200, z)
        np.testing.assert_array_equal(
            fitted_model.predict(x_new).mean, p_old.mean
        )

    def test_simulate_matches_engine(self, fitted_model, rng):
        x_new = rng.uniform(size=(15, 2))
        d_model = fitted_model.simulate(x_new, size=2, seed=4)
        d_engine = fitted_model.serving_engine().simulate(
            x_new, size=2, seed=4
        )
        np.testing.assert_array_equal(d_model, d_engine)

    def test_golden_serving_check_clean(self):
        from repro.analysis import check_golden_serving

        report = check_golden_serving()
        assert report.ok, report.render_text()
