"""Tests for the static task-stream/DAG verifier (repro.analysis.dagcheck)."""

import networkx as nx

from repro.analysis import check_dag, check_task_stream, check_taskgraph
from repro.runtime.dag import build_dag
from repro.runtime.task import Task
from repro.runtime.taskgraph import cholesky_tasks, forward_solve_tasks
from repro.tile.layout import TileLayout


def dag_of(*tasks, edges=()):
    dag = nx.DiGraph()
    for t in tasks:
        dag.add_node(t.uid, task=t)
    dag.add_edges_from(edges)
    return dag


class TestDag001ReadBeforeWrite:
    def test_read_of_unproduced_tile_flagged(self):
        layout = TileLayout(64, 16)
        tasks = [
            Task(0, "potrf", 0, output=(0, 0)),
            Task(1, "gemm", 0, output=(2, 1), inputs=((7, 0),)),
        ]
        rep = check_task_stream(tasks, layout=layout)
        assert [d.rule for d in rep.errors] == ["DAG001"]
        assert rep.errors[0].task == 1

    def test_reads_of_initial_tiles_clean(self):
        layout = TileLayout(64, 16)
        rep = check_task_stream(list(cholesky_tasks(4)), layout=layout)
        assert len(rep) == 0

    def test_explicit_initial_tiles(self):
        tasks = [Task(0, "potrf", 0, output=(0, 0))]
        assert len(check_task_stream(tasks, initial_tiles=[(0, 0)])) == 0
        rep = check_task_stream(tasks, initial_tiles=[])
        assert [d.rule for d in rep.errors] == ["DAG001"]

    def test_skipped_without_initial_info(self):
        tasks = [Task(0, "trsm", 0, output=(1, 0), inputs=((9, 9),))]
        assert len(check_task_stream(tasks)) == 0


class TestDag002WawRace:
    def test_unordered_writers_flagged(self):
        t0 = Task(0, "potrf", 0, output=(0, 0))
        t1 = Task(1, "potrf", 0, output=(0, 0))
        rep = check_dag(dag_of(t0, t1))
        assert [d.rule for d in rep.errors] == ["DAG002"]
        assert rep.errors[0].tile == (0, 0)

    def test_ordered_writers_clean(self):
        t0 = Task(0, "potrf", 0, output=(0, 0))
        t1 = Task(1, "potrf", 0, output=(0, 0))
        rep = check_dag(dag_of(t0, t1, edges=[(0, 1)]))
        assert len(rep) == 0


class TestDag003RawRace:
    def test_unordered_reader_writer_flagged(self):
        t0 = Task(0, "potrf", 0, output=(0, 0))
        t1 = Task(1, "trsm", 0, output=(1, 0), inputs=((0, 0),))
        rep = check_dag(dag_of(t0, t1))
        assert [d.rule for d in rep.errors] == ["DAG003"]
        assert rep.errors[0].task == 1

    def test_ordered_reader_writer_clean(self):
        t0 = Task(0, "potrf", 0, output=(0, 0))
        t1 = Task(1, "trsm", 0, output=(1, 0), inputs=((0, 0),))
        rep = check_dag(dag_of(t0, t1, edges=[(0, 1)]))
        assert len(rep) == 0

    def test_dropped_edge_in_real_dag_detected(self):
        tasks = list(cholesky_tasks(4))
        dag = build_dag(tasks)
        potrf0 = next(t for t in tasks if t.op == "potrf" and t.k == 0)
        trsm10 = next(t for t in tasks if t.op == "trsm"
                      and t.output == (1, 0))
        dag.remove_edge(potrf0.uid, trsm10.uid)
        rep = check_dag(dag)
        assert [d.rule for d in rep.errors] == ["DAG003"]
        assert rep.errors[0].task == trsm10.uid


class TestDag004DuplicateUids:
    def test_duplicate_uid_flagged(self):
        tasks = [
            Task(0, "potrf", 0, output=(0, 0)),
            Task(0, "trsm", 0, output=(1, 0), inputs=((0, 0),)),
        ]
        rep = check_task_stream(tasks, layout=TileLayout(32, 16))
        assert "DAG004" in [d.rule for d in rep.errors]

    def test_taskgraph_short_circuits_on_duplicates(self):
        tasks = [
            Task(0, "potrf", 0, output=(0, 0)),
            Task(0, "potrf", 0, output=(1, 1)),
        ]
        rep = check_taskgraph(tasks, layout=TileLayout(32, 16))
        assert rep.rule_ids() == ["DAG004"]

    def test_unique_uids_clean(self):
        rep = check_task_stream(list(cholesky_tasks(4)),
                                layout=TileLayout(64, 16))
        assert len(rep) == 0


class TestDag005Cycle:
    def test_cycle_flagged(self):
        t0 = Task(0, "potrf", 0, output=(0, 0))
        t1 = Task(1, "trsm", 0, output=(1, 0), inputs=((0, 0),))
        rep = check_dag(dag_of(t0, t1, edges=[(0, 1), (1, 0)]))
        assert rep.rule_ids() == ["DAG005"]

    def test_acyclic_clean(self):
        tasks = list(cholesky_tasks(4))
        assert "DAG005" not in check_dag(build_dag(tasks)).rule_ids()


class TestDag006MissingTask:
    def test_node_without_task_flagged(self):
        dag = dag_of(Task(0, "potrf", 0, output=(0, 0)))
        dag.add_node(1)  # no task attribute
        rep = check_dag(dag)
        assert rep.rule_ids() == ["DAG006"]

    def test_all_nodes_carry_tasks_clean(self):
        tasks = list(cholesky_tasks(4))
        assert "DAG006" not in check_dag(build_dag(tasks)).rule_ids()


class TestReferenceStreamsClean:
    def test_cholesky_stream_and_dag_clean(self):
        layout = TileLayout(128, 16)
        tasks = list(cholesky_tasks(8))
        assert len(check_taskgraph(tasks, layout=layout)) == 0

    def test_forward_solve_stream_and_dag_clean(self):
        layout = TileLayout(128, 16)
        tasks = list(forward_solve_tasks(8))
        assert len(check_taskgraph(tasks, layout=layout)) == 0
