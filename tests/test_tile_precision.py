"""Tests for the precision ladder."""

import numpy as np
import pytest

from repro.tile.precision import (
    PRECISION_LADDER,
    Precision,
    cast_storage,
    compute_dtype,
)


class TestPrecision:
    def test_ordering(self):
        assert Precision.FP16 < Precision.FP32 < Precision.FP64

    def test_ladder_least_accurate_first(self):
        assert PRECISION_LADDER == (
            Precision.FP16,
            Precision.FP32,
            Precision.FP64,
        )

    def test_dtypes(self):
        assert Precision.FP64.dtype == np.float64
        assert Precision.FP32.dtype == np.float32
        assert Precision.FP16.dtype == np.float16

    def test_unit_roundoffs(self):
        assert Precision.FP64.unit_roundoff == 2.0**-53
        assert Precision.FP32.unit_roundoff == 2.0**-24
        assert Precision.FP16.unit_roundoff == 2.0**-11

    def test_itemsizes(self):
        assert [p.itemsize for p in PRECISION_LADDER] == [2, 4, 8]

    def test_labels(self):
        assert Precision.FP32.label == "FP32"

    def test_from_any_string(self):
        assert Precision.from_any("fp32") is Precision.FP32
        assert Precision.from_any("16") is Precision.FP16

    def test_from_any_int_and_dtype(self):
        assert Precision.from_any(64) is Precision.FP64
        assert Precision.from_any(np.dtype(np.float16)) is Precision.FP16

    def test_from_any_rejects_garbage(self):
        with pytest.raises(ValueError):
            Precision.from_any("fp128")


class TestCastStorage:
    def test_noop_same_dtype(self):
        a = np.ones(4, dtype=np.float64)
        assert cast_storage(a, Precision.FP64) is a

    def test_rounds_to_fp16(self):
        a = np.array([1.0 + 2.0**-12])
        out = cast_storage(a, Precision.FP16)
        assert out.dtype == np.float16
        assert float(out[0]) == 1.0  # rounded away

    def test_roundoff_bound(self, rng):
        """Relative rounding error bounded by the unit roundoff."""
        a = rng.uniform(0.5, 2.0, size=1000)
        for p in (Precision.FP16, Precision.FP32):
            err = np.abs(cast_storage(a, p).astype(np.float64) - a) / a
            assert err.max() <= p.unit_roundoff


class TestComputeDtype:
    def test_fp16_accumulates_fp32(self):
        assert compute_dtype(Precision.FP16) == np.float32

    def test_pure_hgemm_option(self):
        assert (
            compute_dtype(Precision.FP16, fp16_accumulate_fp32=False)
            == np.float16
        )

    def test_identity_for_others(self):
        assert compute_dtype(Precision.FP64) == np.float64
        assert compute_dtype(Precision.FP32) == np.float32
