"""Tests for machine specs, kernel flop/time models, and the Fig. 5
crossover analysis."""

import numpy as np
import pytest

from repro.perfmodel import (
    A64FX,
    HASWELL_NODE,
    TaskShape,
    crossover_rank,
    dense_gemm_flops,
    dense_potrf_flops,
    gemm_ratio_curve,
    gemm_time_dense,
    gemm_time_tlr,
    task_bytes,
    task_flops,
    task_time,
    tlr_gemm_flops,
)
from repro.tile import Precision


class TestMachineSpec:
    def test_a64fx_peaks(self):
        assert A64FX.peak_gflops[Precision.FP64] == 3072.0
        assert A64FX.peak_gflops[Precision.FP32] == 2 * 3072.0
        assert A64FX.cores_per_node == 48

    def test_sustained_efficiency_65_percent(self):
        rate = A64FX.dense_rate(Precision.FP64)
        assert rate == pytest.approx(64e9 * 0.65)

    def test_fp16_fallback_runs_at_fp32_rate(self):
        assert A64FX.dense_rate(
            Precision.FP16, shgemm_mode="sgemm_fallback"
        ) == A64FX.dense_rate(Precision.FP32)

    def test_shgemm_slower_than_sgemm(self):
        """Fig. 8: BLIS SHGEMM underperforms SSL SGEMM."""
        assert A64FX.dense_rate(
            Precision.FP16, shgemm_mode="shgemm"
        ) < A64FX.dense_rate(Precision.FP32)

    def test_hgemm_fastest(self):
        assert A64FX.dense_rate(
            Precision.FP16, shgemm_mode="hgemm"
        ) > A64FX.dense_rate(Precision.FP32)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            A64FX.dense_rate(Precision.FP16, shgemm_mode="magic")

    def test_tlr_rate_below_dense(self):
        assert A64FX.tlr_rate(Precision.FP64) < A64FX.dense_rate(Precision.FP64)

    def test_tlr_never_fp16(self):
        assert A64FX.tlr_rate(Precision.FP16) == A64FX.tlr_rate(Precision.FP32)

    def test_comm_time(self):
        t = A64FX.comm_time(40.8e9)  # one second of bandwidth
        assert t == pytest.approx(1.0 + A64FX.net_latency_s)

    def test_haswell_no_fp16_units(self):
        assert (
            HASWELL_NODE.peak_gflops[Precision.FP16]
            == HASWELL_NODE.peak_gflops[Precision.FP32]
        )


class TestFlops:
    def test_dense_gemm(self):
        assert dense_gemm_flops(100) == 2e6

    def test_potrf_cubic_third(self):
        assert dense_potrf_flops(300) == pytest.approx(300**3 / 3, rel=0.01)

    def test_tlr_gemm_grows_with_rank(self):
        f = [tlr_gemm_flops(1000, r, r, r) for r in (10, 50, 200)]
        assert f == sorted(f)

    def test_tlr_cheaper_than_dense_at_low_rank(self):
        assert tlr_gemm_flops(2000, 20, 20, 20) < dense_gemm_flops(2000)

    def test_task_flops_dispatch(self):
        assert task_flops(TaskShape("gemm", 100)) == dense_gemm_flops(100)
        assert task_flops(TaskShape("potrf", 100)) == dense_potrf_flops(100)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            TaskShape("axpy", 100)


class TestTaskTime:
    def test_positive(self):
        for op in ("potrf", "trsm", "syrk", "gemm"):
            assert task_time(TaskShape(op, 500), A64FX) > 0

    def test_fp32_faster_than_fp64(self):
        t64 = task_time(TaskShape("gemm", 800, Precision.FP64), A64FX)
        t32 = task_time(TaskShape("gemm", 800, Precision.FP32), A64FX)
        assert t32 < t64

    def test_overhead_floors_small_tasks(self):
        t = task_time(TaskShape("gemm", 4), A64FX)
        assert t >= A64FX.task_overhead_s

    def test_bytes_positive(self):
        assert task_bytes(TaskShape("gemm", 100)) > 0
        assert task_bytes(
            TaskShape("gemm", 100, low_rank=True, ranks=(5, 5, 5))
        ) > 0

    def test_low_rank_bytes_below_dense(self):
        dense = task_bytes(TaskShape("gemm", 1000))
        lr = task_bytes(TaskShape("gemm", 1000, low_rank=True, ranks=(20, 20, 20)))
        assert lr < dense


class TestCrossover:
    def test_paper_crossover_near_200(self):
        """Fig. 5: dense/TLR crossover at rank ~200 for the paper's
        tile size on one A64FX core."""
        xover = crossover_rank(2700, A64FX)
        assert 120 <= xover <= 320

    def test_crossover_grows_with_tile(self):
        xs = [crossover_rank(b, A64FX) for b in (400, 800, 1600, 2700)]
        assert xs == sorted(xs)

    def test_tlr_wins_below_crossover(self):
        xover = crossover_rank(2700, A64FX)
        dense = gemm_time_dense(2700, A64FX)
        assert gemm_time_tlr(2700, xover // 2, A64FX) < dense
        assert gemm_time_tlr(2700, min(2 * xover, 2699), A64FX) >= dense

    def test_ratio_curve_monotone(self):
        ranks = np.arange(10, 600, 20)
        tlr, dense, ratio = gemm_ratio_curve(2700, ranks, A64FX)
        assert np.all(np.diff(tlr) >= 0)
        assert np.all(dense == dense[0])
        assert ratio[0] > 1.0  # rank 10: TLR much faster

    def test_tlr_time_monotone_in_rank(self):
        times = [gemm_time_tlr(1000, r, A64FX) for r in (5, 50, 300, 499)]
        assert times == sorted(times)
