"""Tests for dataflow dependence analysis."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SchedulingError
from repro.runtime import (
    Task,
    build_dag,
    cholesky_tasks,
    critical_path_length,
    validate_schedule,
)


class TestBuildDag:
    def test_acyclic(self):
        dag = build_dag(list(cholesky_tasks(6)))
        assert nx.is_directed_acyclic_graph(dag)

    def test_sequential_order_is_topological(self):
        tasks = list(cholesky_tasks(5))
        dag = build_dag(tasks)
        for u, v in dag.edges:
            assert u < v  # generator order respects dependencies

    def test_raw_dependency(self):
        """TRSM(m,k) reads (k,k) written by POTRF(k)."""
        tasks = list(cholesky_tasks(3))
        dag = build_dag(tasks)
        potrf0 = tasks[0]
        trsm10 = tasks[1]
        assert dag.has_edge(potrf0.uid, trsm10.uid)

    def test_war_dependency(self):
        """POTRF(1) writes (1,1) which SYRK(1,k=0) read: write-after-read."""
        tasks = list(cholesky_tasks(2))
        # tasks: potrf0, trsm(1,0), syrk(1,1), potrf(1,1)
        dag = build_dag(tasks)
        syrk = next(t for t in tasks if t.op == "syrk")
        potrf1 = [t for t in tasks if t.op == "potrf"][1]
        assert dag.has_edge(syrk.uid, potrf1.uid)

    def test_duplicate_uid_rejected(self):
        tasks = [
            Task(0, "potrf", 0, output=(0, 0)),
            Task(0, "potrf", 0, output=(1, 1)),
        ]
        with pytest.raises(SchedulingError):
            build_dag(tasks)

    def test_independent_tasks_unordered(self):
        """TRSM(1,0) and TRSM(2,0) are parallel."""
        tasks = list(cholesky_tasks(3))
        dag = build_dag(tasks)
        trsms = [t.uid for t in tasks if t.op == "trsm" and t.k == 0]
        assert not dag.has_edge(trsms[0], trsms[1])
        assert not dag.has_edge(trsms[1], trsms[0])

    def test_first_panel_width(self):
        """All k=0 TRSMs depend only on POTRF(0): sources + 1 level."""
        tasks = list(cholesky_tasks(8))
        dag = build_dag(tasks)
        for t in tasks:
            if t.op == "trsm" and t.k == 0:
                assert list(dag.predecessors(t.uid)) == [tasks[0].uid]

    @given(nt=st.integers(1, 9))
    @settings(max_examples=9, deadline=None)
    def test_property_edges_respect_generator_order(self, nt):
        dag = build_dag(list(cholesky_tasks(nt)))
        assert all(u < v for u, v in dag.edges)


class TestCriticalPath:
    def test_unit_durations_chain_length(self):
        """Unit durations: critical path of tile Cholesky is
        3 (nt - 1) + 1 tasks deep (potrf->trsm->syrk chain per panel)."""
        for nt in (1, 2, 4, 6):
            tasks = list(cholesky_tasks(nt))
            dag = build_dag(tasks)
            durations = {t.uid: 1.0 for t in tasks}
            cp = critical_path_length(dag, durations)
            assert cp == pytest.approx(3 * (nt - 1) + 1)

    def test_weighted(self):
        tasks = list(cholesky_tasks(2))
        dag = build_dag(tasks)
        durations = {t.uid: (10.0 if t.op == "potrf" else 1.0) for t in tasks}
        # potrf(0) -> trsm -> syrk -> potrf(1): 10+1+1+10
        assert critical_path_length(dag, durations) == pytest.approx(22.0)

    def test_lower_bounds_any_schedule(self):
        tasks = list(cholesky_tasks(5))
        dag = build_dag(tasks)
        durations = {t.uid: 1.0 + (t.uid % 3) for t in tasks}
        cp = critical_path_length(dag, durations)
        serial = sum(durations.values())
        assert cp <= serial


class TestValidateSchedule:
    def test_accepts_serial_schedule(self):
        tasks = list(cholesky_tasks(4))
        dag = build_dag(tasks)
        start, end, t = {}, {}, 0.0
        for task in tasks:
            start[task.uid] = t
            t += 1.0
            end[task.uid] = t
        validate_schedule(dag, start, end)

    def test_rejects_dependency_violation(self):
        tasks = list(cholesky_tasks(3))
        dag = build_dag(tasks)
        start = {t.uid: 0.0 for t in tasks}
        end = {t.uid: 1.0 for t in tasks}
        with pytest.raises(SchedulingError):
            validate_schedule(dag, start, end)

    def test_rejects_missing_tasks(self):
        tasks = list(cholesky_tasks(3))
        dag = build_dag(tasks)
        with pytest.raises(SchedulingError):
            validate_schedule(dag, {}, {})
