"""Tests for tile-wise covariance assembly and the planning pipeline."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.tile import (
    Precision,
    assemble_dense,
    build_planned_covariance,
)


class TestAssembleDense:
    def test_matches_direct_covariance(self, matern, theta_matern, locations_200):
        tm = assemble_dense(matern, theta_matern, locations_200, 48, nugget=1e-8)
        direct = matern.covariance_matrix(theta_matern, locations_200, nugget=1e-8)
        np.testing.assert_allclose(tm.to_dense(), direct, atol=1e-13)

    def test_ragged_tiles(self, matern, theta_matern, locations_200):
        tm = assemble_dense(matern, theta_matern, locations_200, 37)
        assert tm.n == 200
        assert tm.complete


class TestPlannedDenseFP64:
    def test_all_dense_fp64(self, tiled_cov_200):
        mat, report = tiled_cov_200
        counts = mat.structure_counts()
        assert set(counts) == {"dense/FP64"}
        assert report.plan.band_size_dense == 1

    def test_global_norm_consistent(self, tiled_cov_200):
        mat, report = tiled_cov_200
        assert report.global_norm == pytest.approx(
            mat.global_fro_norm(), rel=1e-10
        )


class TestPlannedMP:
    def test_weak_correlation_demotes(self, matern, locations_200):
        theta = np.array([1.0, 0.03, 0.5])
        mat, report = build_planned_covariance(
            matern, theta, locations_200, 40, nugget=1e-8, use_mp=True
        )
        counts = mat.structure_counts()
        assert counts.get("dense/FP16", 0) + counts.get("dense/FP32", 0) > 0

    def test_strong_correlation_stays_fp64(self, matern, locations_200):
        theta = np.array([1.0, 0.3, 0.5])
        mat, _ = build_planned_covariance(
            matern, theta, locations_200, 40, nugget=1e-8, use_mp=True
        )
        counts = mat.structure_counts()
        assert counts.get("dense/FP16", 0) == 0

    def test_band_mode(self, matern, theta_matern, locations_200):
        mat, report = build_planned_covariance(
            matern, theta_matern, locations_200, 40, nugget=1e-8,
            use_mp=True, mp_mode="band", mp_fp64_band=2, mp_fp32_band=3,
        )
        plan = report.plan
        assert plan.precision_of(1, 0) is Precision.FP64
        assert plan.precision_of(2, 0) is Precision.FP32
        assert plan.precision_of(4, 0) is Precision.FP16

    def test_mp_reduces_memory(self, matern, locations_200):
        theta = np.array([1.0, 0.03, 0.5])
        dense, _ = build_planned_covariance(
            matern, theta, locations_200, 40, nugget=1e-8
        )
        mp, _ = build_planned_covariance(
            matern, theta, locations_200, 40, nugget=1e-8, use_mp=True
        )
        assert mp.nbytes < dense.nbytes

    def test_unknown_mp_mode(self, matern, theta_matern, locations_200):
        with pytest.raises(ConfigurationError):
            build_planned_covariance(
                matern, theta_matern, locations_200, 40,
                use_mp=True, mp_mode="everything",
            )


class TestPlannedTLR:
    def test_lr_tiles_created(self, matern, theta_matern, locations_200):
        mat, report = build_planned_covariance(
            matern, theta_matern, locations_200, 40, nugget=1e-8,
            use_tlr=True, band_size=1,
        )
        counts = mat.structure_counts()
        assert any(k.startswith("lr/") for k in counts)
        assert report.ranks  # ranks recorded

    def test_compression_error_bound(self, matern, theta_matern, locations_200):
        """||A_tlr - A||_F <= ~ tlr_tol * ||A||_F (nt * tile_tol)."""
        tol = 1e-6
        mat, report = build_planned_covariance(
            matern, theta_matern, locations_200, 40, nugget=1e-8,
            use_tlr=True, tlr_tol=tol, band_size=1,
        )
        direct = matern.covariance_matrix(theta_matern, locations_200, nugget=1e-8)
        err = np.linalg.norm(mat.to_dense() - direct)
        assert err <= tol * report.global_norm * mat.nt

    def test_band_forced_dense(self, matern, theta_matern, locations_200):
        _, report = build_planned_covariance(
            matern, theta_matern, locations_200, 40, nugget=1e-8,
            use_tlr=True, band_size=2,
        )
        plan = report.plan
        for j in range(plan.nt - 1):
            assert not plan.is_low_rank(j + 1, j)

    def test_fp16_lr_promoted_to_fp32(self, matern, locations_200):
        """LR tiles never store FP16 (Algorithm 2)."""
        theta = np.array([1.0, 0.03, 0.5])
        mat, _ = build_planned_covariance(
            matern, theta, locations_200, 40, nugget=1e-8,
            use_mp=True, use_tlr=True, band_size=1,
        )
        assert "lr/FP16" not in mat.structure_counts()

    def test_tlr_reduces_memory(self, matern, theta_matern, locations_200):
        dense, _ = build_planned_covariance(
            matern, theta_matern, locations_200, 40, nugget=1e-8
        )
        tlr, _ = build_planned_covariance(
            matern, theta_matern, locations_200, 40, nugget=1e-8,
            use_tlr=True, band_size=1,
        )
        assert tlr.nbytes < dense.nbytes

    def test_invalid_band_size(self, matern, theta_matern, locations_200):
        with pytest.raises(ConfigurationError):
            build_planned_covariance(
                matern, theta_matern, locations_200, 40,
                use_tlr=True, band_size=0,
            )

    def test_auto_band(self, matern, theta_matern, locations_200):
        _, report = build_planned_covariance(
            matern, theta_matern, locations_200, 40, nugget=1e-8,
            use_tlr=True, band_size="auto",
        )
        assert report.plan.band_size_dense >= 1

    def test_rank_decay_with_offset(self, matern, locations_200):
        """Morton-ordered covariance: mean rank at offset >= 2 is lower
        than at offset 1 (the premise of the band structure)."""
        theta = np.array([1.0, 0.1, 0.5])
        _, report = build_planned_covariance(
            matern, theta, locations_200, 25, nugget=1e-8,
            use_tlr=True, band_size=1,
        )
        near = [r for (i, j), r in report.ranks.items() if i - j == 1]
        far = [r for (i, j), r in report.ranks.items() if i - j >= 4]
        assert np.mean(far) < np.mean(near)
