"""Tests for location generators, GRF sampling, surrogates, splits,
and preprocessing."""

import numpy as np
import pytest

from repro.data import (
    CORRELATION_RANGES,
    ET_THETA,
    ET_THETA_PAPER,
    SOIL_MOISTURE_THETA,
    detrend_linear,
    et_raw_panel,
    et_surrogate,
    gaussianity_diagnostics,
    jittered_grid,
    monthly_climatology_residuals,
    region_locations,
    sample_gaussian_field,
    simulate_matern_dataset,
    soil_moisture_surrogate,
    space_time_locations,
    standardize,
    train_test_split,
    uniform_locations,
)
from repro.exceptions import ShapeError


class TestLocations:
    def test_uniform_count_and_box(self):
        x = uniform_locations(100, seed=1, aspect=2.0)
        assert x.shape == (100, 2)
        assert x[:, 0].max() <= 2.0 and x[:, 1].max() <= 1.0

    def test_uniform_seeded(self):
        np.testing.assert_array_equal(
            uniform_locations(10, seed=3), uniform_locations(10, seed=3)
        )

    def test_jittered_grid_distinct(self):
        x = jittered_grid(200, seed=2)
        d = np.linalg.norm(x[:, None] - x[None, :], axis=-1)
        np.fill_diagonal(d, 1.0)
        assert d.min() > 0.0

    def test_jittered_grid_quasi_uniform(self):
        """Jittered grid fills space more evenly than iid uniform:
        larger minimal nearest-neighbour distance."""
        xg = jittered_grid(400, seed=4)
        xu = uniform_locations(400, seed=4)

        def min_nn(x):
            d = np.linalg.norm(x[:, None] - x[None, :], axis=-1)
            np.fill_diagonal(d, np.inf)
            return d.min()

        assert min_nn(xg) > min_nn(xu)

    def test_jitter_bounds(self):
        with pytest.raises(ShapeError):
            jittered_grid(10, jitter=0.5)

    def test_region_aspect(self):
        x = region_locations(500, "central_asia", seed=5)
        assert x[:, 0].max() > 1.2  # wide region

    def test_unknown_region(self):
        with pytest.raises(ShapeError):
            region_locations(10, "atlantis")

    def test_space_time_stack(self):
        x = space_time_locations(10, 4, seed=6)
        assert x.shape == (40, 3)
        np.testing.assert_array_equal(np.unique(x[:, 2]), [0.0, 1.0, 2.0, 3.0])
        # Same spatial points in every slot.
        np.testing.assert_array_equal(x[:10, :2], x[10:20, :2])


class TestSampling:
    def test_zero_mean_unit_variance_statistics(self, matern):
        theta = np.array([1.0, 0.05, 0.5])
        x = uniform_locations(300, seed=7)
        fields = sample_gaussian_field(matern, theta, x, seed=8, size=50)
        assert fields.shape == (50, 300)
        assert abs(fields.mean()) < 0.05
        assert fields.var() == pytest.approx(1.0, rel=0.15)

    def test_single_realization_1d(self, matern):
        x = uniform_locations(50, seed=9)
        z = sample_gaussian_field(matern, np.array([1.0, 0.1, 0.5]), x, seed=10)
        assert z.shape == (50,)

    def test_seeded_reproducible(self, matern):
        x = uniform_locations(40, seed=11)
        theta = np.array([1.0, 0.1, 0.5])
        z1 = sample_gaussian_field(matern, theta, x, seed=12)
        z2 = sample_gaussian_field(matern, theta, x, seed=12)
        np.testing.assert_array_equal(z1, z2)

    def test_empirical_covariance_matches(self, matern):
        """Sample covariance over many replicates approaches Sigma."""
        theta = np.array([1.0, 0.2, 0.5])
        x = uniform_locations(30, seed=13)
        fields = sample_gaussian_field(matern, theta, x, seed=14, size=3000)
        emp = np.cov(fields.T)
        sigma = matern.covariance_matrix(theta, x)
        assert np.max(np.abs(emp - sigma)) < 0.15

    def test_matern_dataset_labels(self):
        data = simulate_matern_dataset(60, "weak", seed=15)
        assert data.theta_true[1] == CORRELATION_RANGES["weak"]
        assert data.n == 60


class TestSplit:
    def test_sizes_and_disjoint(self):
        x = uniform_locations(50, seed=16)
        z = np.arange(50, dtype=float)
        xtr, ztr, xte, zte = train_test_split(x, z, n_test=10, seed=17)
        assert len(xtr) == 40 and len(xte) == 10
        all_z = np.sort(np.concatenate([ztr, zte]))
        np.testing.assert_array_equal(all_z, z)

    def test_invalid_n_test(self):
        x = uniform_locations(10, seed=18)
        with pytest.raises(ShapeError):
            train_test_split(x, np.zeros(10), n_test=10)


class TestSurrogates:
    def test_soil_moisture_uses_table1_theta(self):
        np.testing.assert_allclose(SOIL_MOISTURE_THETA, [0.672, 0.173, 0.4358])
        data = soil_moisture_surrogate(n_train=150, n_test=20, seed=19)
        assert data.n_train == 150 and data.n_test == 20
        np.testing.assert_array_equal(data.theta_true, SOIL_MOISTURE_THETA)

    def test_soil_moisture_variance_scale(self):
        data = soil_moisture_surrogate(n_train=600, n_test=60, seed=20)
        assert data.z_train.var() == pytest.approx(0.672, rel=0.5)

    def test_et_theta_clamped_but_paper_recorded(self):
        assert ET_THETA_PAPER[4] == pytest.approx(3.4941)
        assert 0 < ET_THETA[4] <= 1.0
        np.testing.assert_array_equal(ET_THETA[[0, 1, 2, 3, 5]],
                                      ET_THETA_PAPER[[0, 1, 2, 3, 5]])

    def test_et_surrogate_shapes(self):
        data = et_surrogate(n_space=30, n_slots=6, n_test=30, seed=21)
        assert data.x_train.shape[1] == 3
        assert data.n_train == 150
        assert len(data.x_test) == 30


class TestPreprocess:
    def test_climatology_residuals(self):
        history = np.ones((20, 12, 5)) * np.arange(12)[None, :, None]
        target = np.arange(12)[:, None] * np.ones((12, 5)) + 2.0
        resid = monthly_climatology_residuals(history, target)
        np.testing.assert_allclose(resid, 2.0)

    def test_climatology_shape_check(self):
        with pytest.raises(ShapeError):
            monthly_climatology_residuals(np.ones((5, 12, 4)), np.ones((12, 3)))

    def test_detrend_removes_linear_surface(self, rng):
        locs = rng.uniform(size=(80, 2))
        values = 3.0 + 2.0 * locs[:, 0] - 1.5 * locs[:, 1]
        resid = detrend_linear(values, locs)
        np.testing.assert_allclose(resid, 0.0, atol=1e-10)

    def test_detrend_preserves_stationary_part(self, rng):
        locs = rng.uniform(size=(100, 2))
        noise = rng.standard_normal(100)
        values = noise + 5.0 * locs[:, 0]
        resid = detrend_linear(values, locs)
        assert np.corrcoef(resid, locs[:, 0])[0, 1] == pytest.approx(0.0, abs=0.05)

    def test_detrend_multi_field(self, rng):
        locs = rng.uniform(size=(50, 2))
        fields = np.vstack([locs[:, 0], locs[:, 1]])
        resid = detrend_linear(fields, locs)
        assert resid.shape == (2, 50)
        np.testing.assert_allclose(resid, 0.0, atol=1e-10)

    def test_standardize(self, rng):
        vals = 5.0 + 3.0 * rng.standard_normal(500)
        out, mean, std = standardize(vals)
        assert out.mean() == pytest.approx(0.0, abs=1e-12)
        assert out.std() == pytest.approx(1.0, rel=1e-12)
        np.testing.assert_allclose(out * std + mean, vals)

    def test_standardize_constant_rejected(self):
        with pytest.raises(ShapeError):
            standardize(np.ones(10))

    def test_gaussianity_diagnostics_on_normal(self, rng):
        diag = gaussianity_diagnostics(rng.standard_normal(5000))
        assert abs(diag["skewness"]) < 0.15
        assert abs(diag["excess_kurtosis"]) < 0.3

    def test_full_et_pipeline_recovers_stationarity(self):
        """Raw panel -> climatology removal -> detrend yields residuals
        whose spatial linear trend is gone and whose moments are
        near-Gaussian (the paper's preprocessing claim)."""
        space, history, target = et_raw_panel(n_space=40, n_years=8, seed=22)
        resid = monthly_climatology_residuals(history, target)
        detrended = detrend_linear(resid, space)
        for month in range(12):
            corr_x = np.corrcoef(detrended[month], space[:, 0])[0, 1]
            assert abs(corr_x) < 0.3
        diag = gaussianity_diagnostics(detrended)
        assert abs(diag["skewness"]) < 1.0
