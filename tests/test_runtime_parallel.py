"""Tests for the threaded parallel execution engine."""

import os

import numpy as np
import pytest

from repro.exceptions import SchedulingError
from repro.runtime import execute_cholesky_parallel
from repro.tile import build_planned_covariance, tile_cholesky
from tests.conftest import random_spd_tilematrix


@pytest.fixture(scope="module")
def planned():
    from repro.kernels import MaternKernel
    from repro.ordering import order_points

    gen = np.random.default_rng(99)
    x = gen.uniform(size=(300, 2))
    x = x[order_points(x, "morton")]
    mat, rep = build_planned_covariance(
        MaternKernel(), np.array([1.0, 0.1, 0.5]), x, 50, nugget=1e-8,
        use_mp=True, use_tlr=True, band_size=2,
    )
    return mat, rep


class TestParallelEngine:
    def test_matches_sequential_dense(self):
        tm = random_spd_tilematrix(96, 16, seed=4)
        ref, _ = tile_cholesky(tm.copy())
        par, report = execute_cholesky_parallel(tm, workers=4)
        np.testing.assert_array_equal(
            ref.to_dense(lower_only=True), par.to_dense(lower_only=True)
        )
        assert report.tasks == len(list(__import__(
            "repro.runtime", fromlist=["cholesky_tasks"]
        ).cholesky_tasks(6)))

    def test_matches_sequential_adaptive(self, planned):
        mat, rep = planned
        ref, _ = tile_cholesky(mat.copy(), tile_tol=rep.tile_tol)
        par, _ = execute_cholesky_parallel(
            mat.copy(), workers=3, tile_tol=rep.tile_tol
        )
        np.testing.assert_allclose(
            ref.to_dense(lower_only=True), par.to_dense(lower_only=True),
            atol=1e-12,
        )

    def test_single_worker(self):
        tm = random_spd_tilematrix(48, 16, seed=5)
        ref, _ = tile_cholesky(tm.copy())
        par, report = execute_cholesky_parallel(tm, workers=1)
        np.testing.assert_array_equal(
            ref.to_dense(lower_only=True), par.to_dense(lower_only=True)
        )
        assert report.max_concurrency == 1

    def test_concurrency_observed(self):
        """With many workers and a wide DAG, at least two tasks must
        have been in flight simultaneously at some point (GIL release
        in BLAS makes this reliable at these sizes)."""
        tm = random_spd_tilematrix(400, 40, seed=6)
        _, report = execute_cholesky_parallel(tm, workers=4)
        assert report.max_concurrency >= 2

    def test_indefinite_matrix_raises(self):
        from repro.tile import TileMatrix

        a = np.diag([1.0, -4.0, 1.0, 1.0])
        tm = TileMatrix.from_dense(a, 2)
        with pytest.raises(SchedulingError):
            execute_cholesky_parallel(tm, workers=2)

    def test_zero_workers_rejected(self):
        tm = random_spd_tilematrix(8, 4, seed=7)
        with pytest.raises(SchedulingError):
            execute_cholesky_parallel(tm, workers=0)

    def test_repeatable(self):
        """Two parallel runs on copies give identical factors (the
        dependence structure serializes every conflicting update)."""
        tm = random_spd_tilematrix(120, 24, seed=8)
        f1, _ = execute_cholesky_parallel(tm.copy(), workers=4)
        f2, _ = execute_cholesky_parallel(tm.copy(), workers=4)
        np.testing.assert_array_equal(
            f1.to_dense(lower_only=True), f2.to_dense(lower_only=True)
        )


#: Worker count of the stress pass; CI's chaos job raises it to 8 to
#: widen the interleaving space beyond what the fast suite explores.
STRESS_WORKERS = int(os.environ.get("REPRO_STRESS_WORKERS", "4"))


class TestStressChaos:
    def test_chaos_stress_matches_sequential(self):
        """Many workers + seeded tile corruption: the retry policy
        absorbs every injected fault and the factor still matches the
        sequential engine bit for bit."""
        from repro.resilience import ChaosConfig, RetryPolicy

        tm = random_spd_tilematrix(240, 24, seed=11)
        ref, _ = tile_cholesky(tm.copy())
        par, report = execute_cholesky_parallel(
            tm.copy(),
            workers=STRESS_WORKERS,
            retry=RetryPolicy(
                max_attempts=4, base_delay_s=0.0, max_delay_s=0.0
            ),
            chaos=ChaosConfig(seed=20220101, tile_nan_rate=0.05),
        )
        np.testing.assert_array_equal(
            ref.to_dense(lower_only=True), par.to_dense(lower_only=True)
        )
        assert report.chaos_events > 0
        assert report.retries >= report.chaos_events

    def test_chaos_stress_under_sanitizer_zero_findings(self):
        """The same stress run with the dynamic race sanitizer watching
        every tile write and dispatch-lock edge reports nothing."""
        from repro.analysis import disable_sanitizer, enable_sanitizer
        from repro.resilience import ChaosConfig, RetryPolicy

        tm = random_spd_tilematrix(160, 16, seed=12)
        state = enable_sanitizer()
        try:
            execute_cholesky_parallel(
                tm,
                workers=STRESS_WORKERS,
                retry=RetryPolicy(
                    max_attempts=4, base_delay_s=0.0, max_delay_s=0.0
                ),
                chaos=ChaosConfig(seed=20220101, tile_nan_rate=0.05),
            )
            report = state.report()
        finally:
            disable_sanitizer()
        assert report.diagnostics == []
