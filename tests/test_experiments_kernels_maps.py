"""Tests for the fig5/fig9 experiment drivers."""

import numpy as np
import pytest

from repro.experiments import run_fig5, run_fig9


class TestRunFig5:
    def test_crossover_consistent(self):
        study = run_fig5(800)
        assert study.crossover == pytest.approx(59, abs=5)
        # Times below the crossover favor TLR, above favor dense.
        below = study.ranks < study.crossover
        assert np.all(study.tlr_times[below] < study.dense_times[below])
        above = study.ranks > study.crossover
        assert np.all(study.tlr_times[above] >= study.dense_times[above])

    def test_table_renders(self):
        text = run_fig5(400).table()
        assert "crossover rank" in text

    def test_custom_ranks(self):
        ranks = np.array([10, 20, 40])
        study = run_fig5(800, ranks=ranks)
        assert study.ranks.shape == (3,)


class TestRunFig9:
    @pytest.fixture(scope="class")
    def study(self):
        return run_fig9(0.03, n=600, tile_size=50)

    def test_reduction_band(self, study):
        assert 0.3 < study.reduction < 0.99

    def test_ascii_map_dimensions(self, study):
        lines = study.ascii_map().splitlines()
        assert len(lines) == study.plan.nt
        assert len(lines[0]) == study.plan.nt

    def test_diagonal_dense_fp64(self, study):
        lines = study.ascii_map().splitlines()
        for i, line in enumerate(lines):
            assert line[i] == "8"

    def test_weak_compresses_more_than_strong(self):
        weak = run_fig9(0.03, n=600, tile_size=50)
        strong = run_fig9(0.3, n=600, tile_size=50)
        assert weak.reduction >= strong.reduction * 0.95
