"""Tests for the multiprocess shared-memory execution backend."""

import os
import signal

import numpy as np
import pytest

from repro.core.variants import get_variant
from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    NotPositiveDefiniteError,
    SchedulingError,
    WorkerLostError,
)
from repro.resilience import (
    CancellationToken,
    ChaosConfig,
    Deadline,
    RetryPolicy,
)
from repro.runtime import (
    BlockCyclic2D,
    ProcessPoolEngine,
    blas_clamp_for,
    clamp_blas_threads,
    cholesky_tasks,
    model_comm_volume,
)
from repro.runtime.blasclamp import BLAS_THREAD_ENV
from repro.tile import (
    SharedTileStore,
    TileMatrix,
    build_planned_covariance,
    leaked_segments,
    tile_cholesky,
)
from repro.tile.shm import tile_view
from tests.conftest import random_spd_tilematrix

GOLDEN_VARIANTS = (
    "dense-fp64", "mp-dense", "mp-dense-tlr", "mp-dense-tlr-recover",
)


@pytest.fixture(autouse=True)
def no_leaked_shm():
    """Every test — success or failure path — must unlink its shared
    memory; a leaked segment is a bug regardless of what else passed."""
    yield
    assert leaked_segments() == []


def golden_problem(variant: str, nt: int, tile: int = 16):
    from repro.kernels import MaternKernel
    from repro.ordering import order_points

    config = get_variant(variant)
    gen = np.random.default_rng(99)
    x = gen.uniform(size=(nt * tile, 2))
    x = x[order_points(x, "morton")]
    return build_planned_covariance(
        MaternKernel(), np.array([1.0, 0.1, 0.5]), x, tile,
        nugget=1e-8, **config.assembly_kwargs(),
    )


class TestSharedTileStore:
    def test_round_trip_planned_matrix(self):
        """Dense, low-rank, and reduced-precision tiles all survive the
        shared-memory round trip byte-exactly."""
        mat, _ = golden_problem("mp-dense-tlr", 8)
        ref = mat.to_dense()
        store = SharedTileStore(mat.layout)
        try:
            handles = store.put_matrix(mat)
            out = store.read_into(TileMatrix(mat.layout))
            np.testing.assert_array_equal(ref, out.to_dense())
            for index in handles:
                orig, back = mat.get(*index), out.get(*index)
                assert type(orig) is type(back)
                assert orig.precision == back.precision
        finally:
            store.close()

    def test_views_are_zero_copy(self):
        """A worker-side tile view aliases the segment buffer — no
        payload copy for locally-owned reads."""
        tm = random_spd_tilematrix(32, 16, seed=3)
        store = SharedTileStore(tm.layout)
        try:
            handles = store.put_matrix(tm)
            h = handles[(0, 0)]
            seg = store._segments[h.a.segment]
            tile = tile_view(h, seg.buf, None)
            assert tile.data.base is not None  # aliases the segment
        finally:
            store.close()

    def test_close_is_idempotent_and_unlinks(self):
        tm = random_spd_tilematrix(32, 16, seed=3)
        store = SharedTileStore(tm.layout)
        store.put_matrix(tm)
        store.close()
        store.close()
        assert leaked_segments() == []


class TestBitIdentity:
    @pytest.mark.parametrize("variant", GOLDEN_VARIANTS)
    @pytest.mark.parametrize("nt", [4, 8])
    def test_matches_sequential_golden(self, variant, nt):
        """Every shipped variant factors bit-identically to the
        sequential engine on the process backend."""
        mat, rep = golden_problem(variant, nt)
        ref, _ = tile_cholesky(mat.copy(), tile_tol=rep.tile_tol)
        with ProcessPoolEngine(workers=3) as engine:
            par, report = engine.execute(mat.copy(), tile_tol=rep.tile_tol)
        np.testing.assert_array_equal(
            ref.to_dense(lower_only=True), par.to_dense(lower_only=True)
        )
        assert report.tasks == len(list(cholesky_tasks(nt)))
        assert report.workers == 3

    def test_matches_threaded_dense(self):
        from repro.runtime import execute_cholesky_parallel

        tm = random_spd_tilematrix(96, 16, seed=4)
        thr, _ = execute_cholesky_parallel(tm.copy(), workers=4)
        with ProcessPoolEngine(workers=4) as engine:
            par, _ = engine.execute(tm.copy())
        np.testing.assert_array_equal(
            thr.to_dense(lower_only=True), par.to_dense(lower_only=True)
        )

    def test_batched_execution_matches(self):
        """batch=True (stacked BLAS inside each worker dispatch) keeps
        bit-identity and reuses one persistent pool across calls."""
        mat, rep = golden_problem("mp-dense-tlr", 8)
        ref, _ = tile_cholesky(mat.copy(), tile_tol=rep.tile_tol)
        with ProcessPoolEngine(workers=2) as engine:
            for _ in range(2):  # second call reuses the live workers
                par, _ = engine.execute(
                    mat.copy(), tile_tol=rep.tile_tol, batch=True
                )
                np.testing.assert_array_equal(
                    ref.to_dense(lower_only=True),
                    par.to_dense(lower_only=True),
                )

    def test_single_worker(self):
        tm = random_spd_tilematrix(48, 16, seed=5)
        ref, _ = tile_cholesky(tm.copy())
        with ProcessPoolEngine(workers=1) as engine:
            par, report = engine.execute(tm.copy())
        np.testing.assert_array_equal(
            ref.to_dense(lower_only=True), par.to_dense(lower_only=True)
        )
        assert report.max_concurrency == 1
        assert report.blas_clamp is None  # one worker: BLAS unclamped


class TestFailureSemantics:
    def test_indefinite_matrix_unwraps_npd(self):
        a = np.diag([1.0, -4.0, 1.0, 1.0])
        tm = TileMatrix.from_dense(a, 2)
        with ProcessPoolEngine(workers=2) as engine:
            with pytest.raises(SchedulingError) as err:
                engine.execute(tm)
        cause = err.value.__cause__
        assert isinstance(cause, NotPositiveDefiniteError)
        assert cause.tile_index == (0, 0)

    def test_killed_worker_raises_not_hangs(self):
        """SIGKILL on a worker surfaces WorkerLostError (a
        SchedulingError), tears the pool down, and leaves the engine
        reusable — the next execute starts a fresh pool."""
        tm = random_spd_tilematrix(96, 16, seed=6)
        engine = ProcessPoolEngine(workers=2)
        try:
            engine.start()
            os.kill(engine._procs[1].pid, signal.SIGKILL)
            with pytest.raises(WorkerLostError) as err:
                engine.execute(tm.copy())
            assert isinstance(err.value, SchedulingError)
            assert err.value.rank == 1
            assert err.value.exitcode == -signal.SIGKILL
            assert not engine.started  # pool torn down, nothing alive
            ref, _ = tile_cholesky(tm.copy())
            par, _ = engine.execute(tm.copy())  # fresh pool
            np.testing.assert_array_equal(
                ref.to_dense(lower_only=True), par.to_dense(lower_only=True)
            )
        finally:
            engine.close()

    def test_expired_deadline_drains_and_raises(self):
        tm = random_spd_tilematrix(96, 16, seed=7)
        with ProcessPoolEngine(workers=2) as engine:
            with pytest.raises(DeadlineExceededError) as err:
                engine.execute(tm, deadline=Deadline(0.0))
        assert err.value.budget_s == 0.0
        assert err.value.where == "ProcessPoolEngine.execute"

    def test_cancellation_token_drains_and_raises(self):
        tm = random_spd_tilematrix(64, 16, seed=8)
        token = CancellationToken()
        token.cancel("operator abort")
        with ProcessPoolEngine(workers=2) as engine:
            with pytest.raises(DeadlineExceededError) as err:
                engine.execute(tm, cancel=token)
        assert "operator abort" in str(err.value)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolEngine(workers=0)
        with pytest.raises(ConfigurationError):
            ProcessPoolEngine(workers=3, grid=BlockCyclic2D(2, 2))


class TestChaosParity:
    def test_chaos_schedule_independent(self):
        """Seeded chaos keys on (seed, epoch, uid, attempt), so the
        injected events — and the recovered factor — are identical
        whatever the worker count or interleaving."""
        tm = random_spd_tilematrix(128, 16, seed=11)
        runs = {}
        for workers in (1, 3):
            with ProcessPoolEngine(workers=workers) as engine:
                par, report = engine.execute(
                    tm.copy(),
                    retry=RetryPolicy(
                        max_attempts=4, base_delay_s=0.0, max_delay_s=0.0
                    ),
                    chaos=ChaosConfig(seed=7, tile_nan_rate=0.05),
                )
            runs[workers] = (
                par.to_dense(lower_only=True),
                report.chaos_events,
                report.retries,
            )
        assert runs[1][1] > 0
        assert runs[1][1:] == runs[3][1:]
        np.testing.assert_array_equal(runs[1][0], runs[3][0])


class TestCommAccounting:
    def test_measured_matches_model_on_dense_plan(self):
        """The executor's measured CommStats equals the simulator's
        wire-format prediction byte-for-byte on a dense plan."""
        from repro.analysis import plan_from_matrix

        mat, _ = golden_problem("dense-fp64", 8)
        plan = plan_from_matrix(mat)
        with ProcessPoolEngine(workers=4) as engine:
            _, report = engine.execute(mat)
            modeled = model_comm_volume(
                plan, engine.grid, list(cholesky_tasks(8))
            )
        measured = report.comm
        assert measured.remote_reads == modeled.remote_reads
        assert measured.local_reads == modeled.local_reads
        assert measured.remote_bytes == modeled.remote_bytes

    def test_golden_comm_check_clean(self):
        from repro.analysis import check_golden_comm

        report = check_golden_comm(nt=4, workers=2)
        assert report.ok

    def test_single_worker_all_local(self):
        tm = random_spd_tilematrix(64, 16, seed=12)
        with ProcessPoolEngine(workers=1) as engine:
            _, report = engine.execute(tm)
        assert report.comm.remote_reads == 0
        assert report.comm.remote_bytes == 0
        assert report.comm.local_reads > 0


class TestBlasClamp:
    def test_clamp_divides_cores(self):
        assert blas_clamp_for(4, cores=8) == 2
        assert blas_clamp_for(2, cores=8) == 4
        assert blas_clamp_for(16, cores=8) == 1
        assert blas_clamp_for(1, cores=8) == 8

    def test_context_sets_and_restores_env(self):
        name = BLAS_THREAD_ENV[0]
        before = os.environ.get(name)
        with clamp_blas_threads(4, cores=8) as clamp:
            assert clamp == 2
            assert os.environ[name] == "2"
        assert os.environ.get(name) == before

    def test_report_records_clamp(self):
        tm = random_spd_tilematrix(64, 16, seed=13)
        with ProcessPoolEngine(workers=2) as engine:
            _, report = engine.execute(tm)
        assert report.blas_clamp == blas_clamp_for(2)
        assert report.blas_clamp >= 1


class TestBackendWiring:
    @pytest.fixture(scope="class")
    def problem(self):
        from repro.ordering import order_points

        gen = np.random.default_rng(99)
        x = gen.uniform(size=(200, 2))
        x = x[order_points(x, "morton")]
        z = gen.standard_normal(200)
        return x, z

    def test_loglikelihood_backends_agree(self, problem):
        from repro.core.likelihood import loglikelihood
        from repro.kernels import MaternKernel

        x, z = problem
        theta = np.array([1.0, 0.1, 0.5])
        values = {
            backend: loglikelihood(
                MaternKernel(), theta, x, z, tile_size=40,
                variant="mp-dense-tlr", nugget=1e-8,
                backend=backend, workers=2,
            ).value
            for backend in ("sequential", "thread", "process")
        }
        assert values["sequential"] == values["thread"] == values["process"]

    def test_fit_mle_process_bit_equal(self, problem):
        from repro.core.mle import fit_mle
        from repro.kernels import MaternKernel

        x, z = problem
        fits = {
            backend: fit_mle(
                MaternKernel(), x, z, tile_size=40, variant="mp-dense",
                nugget=1e-8, max_iter=5, backend=backend, workers=2,
            )
            for backend in ("thread", "process")
        }
        assert fits["thread"].loglik == fits["process"].loglik
        assert fits["thread"].history == fits["process"].history
        np.testing.assert_array_equal(
            fits["thread"].theta, fits["process"].theta
        )

    def test_evaluation_engine_close_and_reuse(self, problem):
        from repro.core.engine import EvaluationEngine
        from repro.kernels import MaternKernel

        x, z = problem
        theta = np.array([1.0, 0.1, 0.5])
        with EvaluationEngine(
            MaternKernel(), x, z, tile_size=40, variant="mp-dense",
            nugget=1e-8, workers=2, backend="process",
        ) as engine:
            first = engine.evaluate(theta).value
            engine.close()  # pool restarts lazily on the next evaluate
            again = engine.evaluate(theta).value
        assert first == again

    def test_variant_backend_validation(self):
        from repro.core.variants import VariantConfig

        cfg = VariantConfig(name="t", backend="process")
        assert cfg.backend == "process"
        with pytest.raises(ConfigurationError):
            VariantConfig(name="t", backend="mpi")

    def test_unknown_backend_rejected(self, problem):
        from repro.core.likelihood import loglikelihood
        from repro.kernels import MaternKernel

        x, z = problem
        with pytest.raises(ConfigurationError):
            loglikelihood(
                MaternKernel(), np.array([1.0, 0.1, 0.5]), x, z,
                tile_size=40, nugget=1e-8, backend="mpi",
            )

    def test_model_backend_round_trip(self, problem):
        from repro.core.model import ExaGeoStatModel

        x, z = problem
        results = {}
        for backend in ("thread", "process"):
            model = ExaGeoStatModel(
                kernel="matern", variant="mp-dense", tile_size=40,
                nugget=1e-8, backend=backend,
            )
            model.fit(
                x, z, theta0=np.array([1.0, 0.1, 0.5]),
                max_iter=3, workers=2,
            )
            results[backend] = (model.theta_, model.loglik_)
        assert results["thread"][1] == results["process"][1]
        np.testing.assert_array_equal(
            results["thread"][0], results["process"][0]
        )
