"""Tests for the real engine and the discrete-event simulator."""

import numpy as np
import pytest

from repro.exceptions import SchedulingError
from repro.perfmodel import A64FX
from repro.runtime import (
    SimConfig,
    build_dag,
    cholesky_tasks,
    critical_path_length,
    execute_cholesky_tasks,
    simulate_tasks,
    validate_schedule,
)
from repro.tile import build_planned_covariance, tile_cholesky


@pytest.fixture(scope="module")
def planned_problem():
    from repro.kernels import MaternKernel
    from repro.ordering import order_points

    gen = np.random.default_rng(21)
    x = gen.uniform(size=(240, 2))
    x = x[order_points(x, "morton")]
    kern = MaternKernel()
    theta = np.array([1.0, 0.08, 0.5])
    mat, report = build_planned_covariance(
        kern, theta, x, 40, nugget=1e-8, use_mp=True, use_tlr=True, band_size=2
    )
    return mat, report


class TestEngine:
    def test_engine_matches_direct_loop(self, planned_problem):
        mat, report = planned_problem
        a = mat.copy()
        b = mat.copy()
        tasks = list(cholesky_tasks(a.nt))
        l1, _ = tile_cholesky(a, tile_tol=report.tile_tol)
        l2, trace = execute_cholesky_tasks(b, tasks, tile_tol=report.tile_tol)
        np.testing.assert_array_equal(
            l1.to_dense(lower_only=True), l2.to_dense(lower_only=True)
        )
        assert len(trace.records) == len(tasks)

    def test_engine_trace_flops_positive(self, planned_problem):
        mat, report = planned_problem
        tasks = list(cholesky_tasks(mat.nt))
        _, trace = execute_cholesky_tasks(
            mat.copy(), tasks, tile_tol=report.tile_tol
        )
        assert trace.total_flops > 0
        assert trace.makespan > 0


class TestSimulator:
    def test_schedule_valid(self, planned_problem):
        mat, report = planned_problem
        tasks = list(cholesky_tasks(mat.nt))
        dag = build_dag(tasks)
        trace = simulate_tasks(
            tasks, mat.layout, report.plan, SimConfig(nodes=4), dag=dag
        )
        start, end = trace.start_end_maps()
        validate_schedule(dag, start, end)

    def test_makespan_at_least_critical_path(self, planned_problem):
        """Simulated makespan >= duration-weighted critical path
        (lower bound must hold without comm)."""
        from repro.perfmodel.kernelmodel import task_time
        from repro.runtime.simulator import shape_for_task

        mat, report = planned_problem
        tasks = list(cholesky_tasks(mat.nt))
        dag = build_dag(tasks)
        cfg = SimConfig(nodes=4, model_comm=False)
        trace = simulate_tasks(tasks, mat.layout, report.plan, cfg, dag=dag)
        durations = {
            t.uid: task_time(shape_for_task(t, mat.layout, report.plan), A64FX)
            for t in tasks
        }
        cp = critical_path_length(dag, durations)
        assert trace.makespan >= cp * (1 - 1e-9)

    def test_makespan_at_most_serial(self, planned_problem):
        mat, report = planned_problem
        tasks = list(cholesky_tasks(mat.nt))
        cfg = SimConfig(nodes=2, model_comm=False)
        trace = simulate_tasks(tasks, mat.layout, report.plan, cfg)
        serial = sum(r.duration for r in trace.records)
        assert trace.makespan <= serial * (1 + 1e-9)

    def test_more_nodes_not_slower(self, planned_problem):
        mat, report = planned_problem
        tasks = list(cholesky_tasks(mat.nt))
        t1 = simulate_tasks(
            tasks, mat.layout, report.plan,
            SimConfig(nodes=1, model_comm=False),
        ).makespan
        t4 = simulate_tasks(
            tasks, mat.layout, report.plan,
            SimConfig(nodes=4, model_comm=False),
        ).makespan
        assert t4 <= t1 * (1 + 1e-9)

    def test_comm_adds_time(self, planned_problem):
        mat, report = planned_problem
        tasks = list(cholesky_tasks(mat.nt))
        without = simulate_tasks(
            tasks, mat.layout, report.plan,
            SimConfig(nodes=4, model_comm=False),
        )
        with_comm = simulate_tasks(
            tasks, mat.layout, report.plan, SimConfig(nodes=4)
        )
        assert with_comm.makespan >= without.makespan
        assert with_comm.total_comm_bytes > 0

    def test_single_node_no_comm(self, planned_problem):
        mat, report = planned_problem
        tasks = list(cholesky_tasks(mat.nt))
        trace = simulate_tasks(tasks, mat.layout, report.plan, SimConfig(nodes=1))
        assert trace.total_comm_bytes == 0

    def test_conversions_counted_in_mp_plan(self, planned_problem):
        mat, report = planned_problem
        counts = mat.structure_counts()
        assert len(counts) > 1  # mixed plan
        tasks = list(cholesky_tasks(mat.nt))
        trace = simulate_tasks(tasks, mat.layout, report.plan, SimConfig(nodes=4))
        assert trace.total_conversions > 0

    def test_grid_mismatch_rejected(self, planned_problem):
        from repro.runtime import BlockCyclic2D

        mat, report = planned_problem
        tasks = list(cholesky_tasks(mat.nt))
        cfg = SimConfig(nodes=4, grid=BlockCyclic2D(1, 2))
        with pytest.raises(SchedulingError):
            simulate_tasks(tasks, mat.layout, report.plan, cfg)

    def test_panel_priority_also_valid(self, planned_problem):
        mat, report = planned_problem
        tasks = list(cholesky_tasks(mat.nt))
        dag = build_dag(tasks)
        trace = simulate_tasks(
            tasks, mat.layout, report.plan,
            SimConfig(nodes=4, priority="panel"), dag=dag,
        )
        start, end = trace.start_end_maps()
        validate_schedule(dag, start, end)

    def test_trace_summary_fields(self, planned_problem):
        mat, report = planned_problem
        tasks = list(cholesky_tasks(mat.nt))
        trace = simulate_tasks(tasks, mat.layout, report.plan, SimConfig(nodes=2))
        s = trace.summary()
        assert s["tasks"] == len(tasks)
        assert 0 < s["parallel_efficiency"] <= 1.0
        assert s["load_imbalance"] >= 1.0
