"""Unit tests for the simple baseline kernels."""

import numpy as np
import pytest

from repro.kernels import (
    ExponentialKernel,
    GaussianKernel,
    PoweredExponentialKernel,
)


class TestExponential:
    def test_closed_form(self, rng):
        kern = ExponentialKernel()
        x1 = np.array([[0.0, 0.0]])
        x2 = np.array([[0.3, 0.4]])
        c = kern(np.array([2.0, 0.5]), x1, x2)[0, 0]
        assert c == pytest.approx(2.0 * np.exp(-0.5 / 0.5))

    def test_spd(self, rng):
        x = rng.uniform(size=(40, 2))
        c = ExponentialKernel().covariance_matrix(np.array([1.0, 0.2]), x)
        assert np.linalg.eigvalsh(c).min() > 0.0


class TestPoweredExponential:
    def test_power_one_equals_exponential(self, rng):
        x = rng.uniform(size=(15, 2))
        c1 = PoweredExponentialKernel()(np.array([1.0, 0.3, 1.0]), x)
        c2 = ExponentialKernel()(np.array([1.0, 0.3]), x)
        np.testing.assert_allclose(c1, c2, rtol=1e-12)

    def test_power_two_equals_gaussian_scaled(self):
        """power=2 gives exp(-(r/a)^2): a Gaussian with range a/sqrt(2)."""
        kern = PoweredExponentialKernel()
        x1 = np.array([[0.0, 0.0]])
        x2 = np.array([[0.5, 0.0]])
        c = kern(np.array([1.0, 0.25, 2.0]), x1, x2)[0, 0]
        assert c == pytest.approx(np.exp(-4.0))

    def test_zero_distance(self, rng):
        x = rng.uniform(size=(5, 2))
        c = PoweredExponentialKernel()(np.array([1.7, 0.3, 0.8]), x)
        np.testing.assert_allclose(np.diag(c), 1.7)


class TestGaussian:
    def test_closed_form(self):
        kern = GaussianKernel()
        x1 = np.array([[0.0, 0.0]])
        x2 = np.array([[1.0, 0.0]])
        c = kern(np.array([1.0, 0.5]), x1, x2)[0, 0]
        assert c == pytest.approx(np.exp(-2.0))

    def test_rank_drops_with_separation(self, rng):
        """Well-separated cluster interactions compress to lower rank
        than touching ones — the admissibility property TLR exploits."""
        from repro.tile.compression import rank_of_block

        x1 = rng.uniform(size=(40, 2))
        theta2 = np.array([1.0, 1.0])
        kern = GaussianKernel()
        near = kern(theta2, x1, rng.uniform(size=(40, 2)) + 0.5)
        far = kern(theta2, x1, rng.uniform(size=(40, 2)) + 4.0)
        rank_near = rank_of_block(near, 1e-8 * np.linalg.norm(near))
        rank_far = rank_of_block(far, 1e-8 * np.linalg.norm(far))
        assert rank_far < rank_near
