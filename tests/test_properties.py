"""Cross-module property-based tests (hypothesis) on the core
numerical invariants of the system."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import MaternKernel
from repro.ordering import order_points
from repro.runtime import SimConfig, build_dag, cholesky_tasks, simulate_tasks, validate_schedule
from repro.tile import (
    backward_solve,
    build_planned_covariance,
    forward_solve,
    tile_cholesky,
    tile_logdet,
)

KERNEL = MaternKernel()


def make_problem(seed, n, correlation):
    gen = np.random.default_rng(seed)
    x = gen.uniform(size=(n, 2))
    x = x[order_points(x, "morton")]
    theta = np.array([1.0, correlation, 0.5])
    return x, theta


@st.composite
def problem_configs(draw):
    return dict(
        seed=draw(st.integers(0, 10_000)),
        n=draw(st.integers(60, 220)),
        tile=draw(st.sampled_from([16, 25, 40, 64])),
        correlation=draw(st.sampled_from([0.03, 0.1, 0.3])),
        use_mp=draw(st.booleans()),
        use_tlr=draw(st.booleans()),
    )


class TestFactorizationProperties:
    @given(cfg=problem_configs())
    @settings(max_examples=15, deadline=None)
    def test_llt_reconstruction(self, cfg):
        """L L^T ~= Sigma within the variant's accuracy budget."""
        x, theta = make_problem(cfg["seed"], cfg["n"], cfg["correlation"])
        mat, rep = build_planned_covariance(
            KERNEL, theta, x, cfg["tile"], nugget=1e-8,
            use_mp=cfg["use_mp"], use_tlr=cfg["use_tlr"],
            band_size=2 if cfg["use_tlr"] else 1,
        )
        sigma = KERNEL.covariance_matrix(theta, x, nugget=1e-8)
        fac, _ = tile_cholesky(mat, tile_tol=rep.tile_tol)
        low = fac.to_dense(lower_only=True)
        rel = np.linalg.norm(low @ low.T - sigma) / np.linalg.norm(sigma)
        budget = 1e-12 if not (cfg["use_mp"] or cfg["use_tlr"]) else 1e-4
        assert rel < budget

    @given(cfg=problem_configs())
    @settings(max_examples=10, deadline=None)
    def test_solve_residual(self, cfg):
        x, theta = make_problem(cfg["seed"], cfg["n"], cfg["correlation"])
        mat, rep = build_planned_covariance(
            KERNEL, theta, x, cfg["tile"], nugget=1e-8,
            use_mp=cfg["use_mp"], use_tlr=cfg["use_tlr"],
            band_size=2 if cfg["use_tlr"] else 1,
        )
        sigma = KERNEL.covariance_matrix(theta, x, nugget=1e-8)
        fac, _ = tile_cholesky(mat, tile_tol=rep.tile_tol)
        gen = np.random.default_rng(cfg["seed"] + 1)
        b = gen.standard_normal(cfg["n"])
        sol = backward_solve(fac, forward_solve(fac, b))
        rel = np.linalg.norm(sigma @ sol - b) / np.linalg.norm(b)
        assert rel < 1e-3

    @given(cfg=problem_configs())
    @settings(max_examples=10, deadline=None)
    def test_logdet_close_to_reference(self, cfg):
        x, theta = make_problem(cfg["seed"], cfg["n"], cfg["correlation"])
        mat, rep = build_planned_covariance(
            KERNEL, theta, x, cfg["tile"], nugget=1e-8,
            use_mp=cfg["use_mp"], use_tlr=cfg["use_tlr"],
            band_size=2 if cfg["use_tlr"] else 1,
        )
        sigma = KERNEL.covariance_matrix(theta, x, nugget=1e-8)
        fac, _ = tile_cholesky(mat, tile_tol=rep.tile_tol)
        _, ref = np.linalg.slogdet(sigma)
        assert tile_logdet(fac) == pytest.approx(ref, abs=0.5)


class TestMemoryMonotonicity:
    @given(
        seed=st.integers(0, 1000),
        correlation=st.sampled_from([0.03, 0.1]),
    )
    @settings(max_examples=8, deadline=None)
    def test_approximations_never_increase_memory(self, seed, correlation):
        x, theta = make_problem(seed, 160, correlation)
        sizes = {}
        for name, kwargs in (
            ("dense", {}),
            ("mp", dict(use_mp=True)),
            ("mp+tlr", dict(use_mp=True, use_tlr=True, band_size=2)),
        ):
            mat, _ = build_planned_covariance(
                KERNEL, theta, x, 40, nugget=1e-8, **kwargs
            )
            sizes[name] = mat.nbytes
        assert sizes["mp"] <= sizes["dense"]
        assert sizes["mp+tlr"] <= sizes["dense"]


class TestSimulatorProperties:
    @given(
        nt=st.integers(2, 8),
        nodes=st.sampled_from([1, 2, 4, 6]),
        priority=st.sampled_from(["upward", "panel"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_any_config_schedules_validly(self, nt, nodes, priority):
        from repro.tile import TileLayout
        from repro.tile.decisions import TilePlan
        from repro.tile.precision import Precision

        layout = TileLayout(nt * 32, 32)
        plan = TilePlan(
            layout,
            {k: Precision.FP64 for k in layout.lower_tiles()},
            {k: False for k in layout.lower_tiles()},
        )
        tasks = list(cholesky_tasks(nt))
        dag = build_dag(tasks)
        trace = simulate_tasks(
            tasks, layout, plan,
            SimConfig(nodes=nodes, priority=priority), dag=dag,
        )
        start, end = trace.start_end_maps()
        validate_schedule(dag, start, end)
        assert len(trace.records) == len(tasks)
