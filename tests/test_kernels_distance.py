"""Unit tests for repro.kernels.distance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ShapeError
from repro.kernels.distance import (
    as_locations,
    cross_distance,
    cross_space_time_lags,
    cross_sq_distance,
    great_circle_distance,
    pairwise_distance,
    split_space_time,
)


class TestAsLocations:
    def test_1d_promoted_to_column(self):
        out = as_locations([1.0, 2.0, 3.0])
        assert out.shape == (3, 1)

    def test_2d_passthrough(self):
        x = np.zeros((4, 2))
        assert as_locations(x).shape == (4, 2)

    def test_rejects_3d(self):
        with pytest.raises(ShapeError):
            as_locations(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ShapeError):
            as_locations(np.array([[0.0, np.nan]]))

    def test_rejects_wrong_dim(self):
        with pytest.raises(ShapeError):
            as_locations(np.zeros((3, 2)), dim=3)

    def test_casts_to_float64(self):
        out = as_locations(np.zeros((2, 2), dtype=np.float32))
        assert out.dtype == np.float64


class TestCrossDistance:
    def test_matches_bruteforce(self, rng):
        x1 = rng.uniform(size=(17, 3))
        x2 = rng.uniform(size=(9, 3))
        d = cross_distance(x1, x2)
        brute = np.array(
            [[np.linalg.norm(a - b) for b in x2] for a in x1]
        )
        np.testing.assert_allclose(d, brute, atol=1e-12)

    def test_zero_on_identical_points(self):
        x = np.array([[0.5, 0.5]])
        assert cross_distance(x, x)[0, 0] == 0.0

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ShapeError):
            cross_distance(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_nonnegative_despite_cancellation(self, rng):
        base = rng.uniform(size=(50, 2)) * 1e6
        d2 = cross_sq_distance(base, base + 1e-9)
        assert np.all(d2 >= 0.0)

    def test_pairwise_symmetric_zero_diagonal(self, rng):
        x = rng.uniform(size=(20, 2))
        d = pairwise_distance(x)
        np.testing.assert_allclose(d, d.T)
        assert np.all(np.diag(d) == 0.0)

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 8), st.integers(1, 3)),
            elements=st.floats(-100, 100),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality_to_origin(self, pts):
        """d(x, 0) <= d(x, y) + d(y, 0) for a fixed witness y."""
        origin = np.zeros((1, pts.shape[1]))
        y = np.full((1, pts.shape[1]), 0.5)
        dx0 = cross_distance(pts, origin)[:, 0]
        dxy = cross_distance(pts, y)[:, 0]
        dy0 = cross_distance(y, origin)[0, 0]
        assert np.all(dx0 <= dxy + dy0 + 1e-8)


class TestSpaceTime:
    def test_split(self):
        x = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        s, t = split_space_time(x)
        np.testing.assert_array_equal(s, [[1.0, 2.0], [4.0, 5.0]])
        np.testing.assert_array_equal(t, [3.0, 6.0])

    def test_split_needs_two_columns(self):
        with pytest.raises(ShapeError):
            split_space_time(np.zeros((3, 1)))

    def test_lags(self):
        x1 = np.array([[0.0, 0.0, 0.0]])
        x2 = np.array([[3.0, 4.0, 2.0], [0.0, 0.0, -1.0]])
        h, u = cross_space_time_lags(x1, x2)
        np.testing.assert_allclose(h, [[5.0, 0.0]])
        np.testing.assert_allclose(u, [[2.0, 1.0]])


class TestGreatCircle:
    def test_zero_distance(self):
        p = np.array([[46.0, 24.0]])
        assert great_circle_distance(p, p)[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_quarter_circumference(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[90.0, 0.0]])
        d = great_circle_distance(a, b)[0, 0]
        assert d == pytest.approx(np.pi / 2 * 6371.0088, rel=1e-6)

    def test_requires_lonlat_pairs(self):
        with pytest.raises(ShapeError):
            great_circle_distance(np.zeros((2, 3)), np.zeros((2, 2)))
