"""Tests for 2-D block-cyclic distribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.runtime import BlockCyclic2D, square_process_grid


class TestSquareGrid:
    def test_perfect_square(self):
        assert square_process_grid(16) == (4, 4)

    def test_prime(self):
        assert square_process_grid(7) == (1, 7)

    def test_rectangular(self):
        assert square_process_grid(12) == (3, 4)

    def test_one(self):
        assert square_process_grid(1) == (1, 1)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            square_process_grid(0)

    @given(nodes=st.integers(1, 4096))
    @settings(max_examples=50, deadline=None)
    def test_property_factorization(self, nodes):
        p, q = square_process_grid(nodes)
        assert p * q == nodes
        assert p <= q


class TestBlockCyclic:
    def test_owner_formula(self):
        dist = BlockCyclic2D(2, 3)
        assert dist.owner(0, 0) == 0
        assert dist.owner(0, 1) == 1
        assert dist.owner(1, 0) == 3
        assert dist.owner(2, 4) == 1  # (2%2)*3 + (4%3)

    def test_owner_in_range(self):
        dist = BlockCyclic2D(3, 4)
        for i in range(10):
            for j in range(10):
                assert 0 <= dist.owner(i, j) < 12

    def test_rhs_column(self):
        dist = BlockCyclic2D(2, 3)
        assert dist.owner(1, -1) == dist.owner(1, 0)

    def test_tiles_of_partition(self):
        dist = BlockCyclic2D(2, 2)
        nt = 7
        all_tiles = [(i, j) for i in range(nt) for j in range(i + 1)]
        seen = []
        for node in range(dist.nodes):
            seen.extend(dist.tiles_of(node, nt))
        assert sorted(seen) == sorted(all_tiles)

    def test_balanced_distribution(self):
        """Block-cyclic on a big lower triangle is near-balanced."""
        dist = BlockCyclic2D(4, 4)
        nt = 64
        counts = [len(dist.tiles_of(node, nt)) for node in range(16)]
        assert max(counts) / min(counts) < 1.2

    def test_fanouts(self):
        dist = BlockCyclic2D(3, 5)
        assert dist.row_fanout() == 5
        assert dist.col_fanout() == 3

    def test_invalid_grid(self):
        with pytest.raises(ConfigurationError):
            BlockCyclic2D(0, 4)
