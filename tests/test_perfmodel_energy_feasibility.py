"""Tests for the energy model and memory-feasibility analysis."""

import numpy as np
import pytest

from repro.perfmodel import (
    A64FX,
    PlanProfile,
    TaskShape,
    estimate_energy,
    max_feasible_n,
    storage_per_node,
    task_energy,
)
from repro.tile import Precision


@pytest.fixture(scope="module")
def weak_profile():
    from repro.kernels import MaternKernel
    from repro.ordering import order_points
    from repro.tile import build_planned_covariance

    gen = np.random.default_rng(500)
    x = gen.uniform(size=(900, 2))
    x = x[order_points(x, "morton")]
    _, rep = build_planned_covariance(
        MaternKernel(), np.array([1.0, 0.03, 0.5]), x, 60, nugget=1e-8,
        use_mp=True, use_tlr=True, band_size=1, max_rank_fraction=0.95,
    )
    return PlanProfile.from_plan(rep.plan)


class TestTaskEnergy:
    def test_positive(self):
        assert task_energy(TaskShape("gemm", 800)) > 0

    def test_fp32_cheaper_than_fp64(self):
        e64 = task_energy(TaskShape("gemm", 800, Precision.FP64))
        e32 = task_energy(TaskShape("gemm", 800, Precision.FP32))
        assert e32 < e64

    def test_low_rank_cheaper_than_dense(self):
        dense = task_energy(TaskShape("gemm", 1000))
        lr = task_energy(
            TaskShape("gemm", 1000, low_rank=True, ranks=(20, 20, 20))
        )
        assert lr < dense

    def test_energy_scale_plausible(self):
        """One 800^3 FP64 GEMM at ~60 pJ/flop: order 0.1 J."""
        e = task_energy(TaskShape("gemm", 800))
        assert 1e-3 < e < 10.0


class TestEstimateEnergy:
    def test_adaptive_saves_energy(self, weak_profile):
        dense = estimate_energy(PlanProfile.dense_fp64(), 500_000, 1350)
        adaptive = estimate_energy(weak_profile, 500_000, 1350, band_size=2)
        assert adaptive < dense
        assert dense / adaptive > 2.0

    def test_cubic_growth(self):
        prof = PlanProfile.dense_fp64()
        e1 = estimate_energy(prof, 250_000, 1250)
        e2 = estimate_energy(prof, 500_000, 1250)
        assert 6.0 < e2 / e1 < 10.0

    def test_joules_plausible_at_scale(self):
        """1M dense FP64 Cholesky: (1/3)e18 flops x 60 pJ ~ 2e7 J."""
        e = estimate_energy(PlanProfile.dense_fp64(), 1_000_000, 2000)
        assert 1e6 < e < 1e9


class TestFeasibility:
    def test_storage_matches_estimator(self, weak_profile):
        from repro.perfmodel import estimate_cholesky

        est = estimate_cholesky(weak_profile, 1_000_000, 2700, A64FX,
                                nodes=1024, band_size=3)
        per_node = storage_per_node(weak_profile, 1_000_000, 2700, 1024,
                                    band_size=3)
        assert per_node == pytest.approx(est.storage_bytes / 1024, rel=1e-9)

    def test_dense_9m_infeasible_at_2048(self):
        """The Fig. 10 point: 9M dense FP64 does not fit 2048 nodes."""
        dense = PlanProfile.dense_fp64()
        per_node = storage_per_node(dense, 9_000_000, 2700, 2048)
        assert per_node > 32e9

    def test_max_feasible_ordering(self, weak_profile):
        """MP+TLR always fits a (much) larger problem than dense."""
        dense_max = max_feasible_n(PlanProfile.dense_fp64(), 2048, 2700)
        tlr_max = max_feasible_n(weak_profile, 2048, 2700, band_size=3)
        assert tlr_max > 2 * dense_max

    def test_max_feasible_grows_with_nodes(self):
        dense = PlanProfile.dense_fp64()
        n1 = max_feasible_n(dense, 1024, 2700)
        n2 = max_feasible_n(dense, 4096, 2700)
        # Dense storage ~ n^2/2: 4x nodes -> 2x dimension.
        assert n2 == pytest.approx(2 * n1, rel=0.1)

    def test_feasible_result_actually_fits(self, weak_profile):
        n = max_feasible_n(weak_profile, 512, 2700, band_size=3)
        per_node = storage_per_node(weak_profile, n, 2700, 512, band_size=3)
        assert per_node <= 0.8 * 32e9 * 1.01

    def test_multiple_of_tile(self):
        n = max_feasible_n(PlanProfile.dense_fp64(), 256, 2700)
        assert n % 2700 == 0
