"""Shared fixtures: small, fast, deterministic datasets and matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import GneitingMaternKernel, MaternKernel
from repro.ordering import order_points
from repro.tile import TileMatrix, build_planned_covariance


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def locations_200():
    """200 Morton-ordered uniform 2-D locations."""
    gen = np.random.default_rng(777)
    x = gen.uniform(size=(200, 2))
    return x[order_points(x, "morton")]


@pytest.fixture(scope="session")
def matern():
    return MaternKernel()


@pytest.fixture(scope="session")
def gneiting():
    return GneitingMaternKernel()


@pytest.fixture(scope="session")
def theta_matern():
    return np.array([1.0, 0.1, 0.5])


@pytest.fixture(scope="session")
def spd_dense_200(matern, theta_matern, locations_200):
    """A dense SPD covariance matrix and its observations vector."""
    sigma = matern.covariance_matrix(theta_matern, locations_200, nugget=1e-8)
    gen = np.random.default_rng(3)
    z = np.linalg.cholesky(sigma) @ gen.standard_normal(200)
    return sigma, z


@pytest.fixture
def tiled_cov_200(matern, theta_matern, locations_200):
    """Freshly assembled dense-FP64 tile covariance (tile size 40)."""
    mat, report = build_planned_covariance(
        matern, theta_matern, locations_200, 40, nugget=1e-8
    )
    return mat, report


def random_spd_tilematrix(n: int, tile_size: int, seed: int = 0) -> TileMatrix:
    """Well-conditioned random SPD matrix in tile form."""
    gen = np.random.default_rng(seed)
    a = gen.standard_normal((n, n))
    spd = a @ a.T / n + np.eye(n)
    return TileMatrix.from_dense(spd, tile_size)
