"""Fault injection + checkpoint/restart in the discrete-event simulator."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TaskFailedError
from repro.perfmodel import (
    application_mtbf,
    checkpoint_cost_s,
    daly_interval,
    expected_waste,
    young_interval,
)
from repro.runtime import (
    CheckpointConfig,
    FaultModel,
    SimConfig,
    build_dag,
    cholesky_tasks,
    simulate_tasks,
    validate_schedule,
)
from repro.tile import build_planned_covariance


@pytest.fixture(scope="module")
def planned_problem():
    from repro.kernels import MaternKernel
    from repro.ordering import order_points

    gen = np.random.default_rng(21)
    x = gen.uniform(size=(240, 2))
    x = x[order_points(x, "morton")]
    mat, report = build_planned_covariance(
        MaternKernel(), np.array([1.0, 0.08, 0.5]), x, 40,
        nugget=1e-8, use_mp=True, use_tlr=True, band_size=2,
    )
    return mat, report


def _simulate(planned_problem, cfg):
    mat, report = planned_problem
    tasks = list(cholesky_tasks(mat.nt))
    dag = build_dag(tasks)
    return simulate_tasks(tasks, mat.layout, report.plan, cfg, dag=dag), dag


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultModel(node_mtbf_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultModel(transient_prob=1.0)
        with pytest.raises(ConfigurationError):
            FaultModel(restart_s=-1.0)

    def test_crash_times_deterministic_and_increasing(self):
        fm = FaultModel(node_mtbf_s=10.0, seed=3)
        a = fm.crash_times(2)
        b = fm.crash_times(2)
        t, times = 0.0, []
        for _ in range(5):
            t = a.next_after(t)
            times.append(t)
        assert times == sorted(times)
        assert all(t1 < t2 for t1, t2 in zip(times, times[1:]))
        # Same (seed, node) -> same stream, regardless of query order.
        assert b.next_after(times[2]) == times[3]

    def test_crash_streams_differ_by_node_and_seed(self):
        fm = FaultModel(node_mtbf_s=10.0, seed=3)
        assert fm.crash_times(0).next_after(0.0) != fm.crash_times(1).next_after(0.0)
        fm2 = FaultModel(node_mtbf_s=10.0, seed=4)
        assert fm.crash_times(0).next_after(0.0) != fm2.crash_times(0).next_after(0.0)

    def test_infinite_mtbf_never_crashes(self):
        fm = FaultModel(node_mtbf_s=math.inf)
        assert fm.crash_times(0).next_after(0.0) == math.inf

    def test_transient_fractions_deterministic(self):
        fm = FaultModel(transient_prob=0.5, max_task_retries=100, seed=9)
        for uid in range(50):
            assert fm.task_waste_fractions(uid) == fm.task_waste_fractions(uid)

    def test_transient_budget_exhaustion(self):
        fm = FaultModel(transient_prob=0.95, max_task_retries=0, seed=0)
        with pytest.raises(TaskFailedError) as info:
            for uid in range(100):
                fm.task_waste_fractions(uid)
        assert info.value.uid is not None
        assert info.value.attempts >= 1


class TestResilienceModel:
    def test_young_daly_formulas(self):
        c, m, r = 10.0, 1000.0, 30.0
        assert young_interval(c, m) == pytest.approx(math.sqrt(2 * c * m))
        daly = daly_interval(c, m, r)
        assert daly == pytest.approx(math.sqrt(2 * c * (m + r)) - c)
        assert application_mtbf(1000.0, 10) == pytest.approx(100.0)

    def test_checkpoint_cost(self):
        # 4 GB at 4 GB/s -> 1 s.
        assert checkpoint_cost_s(4e9, 4.0) == pytest.approx(1.0)

    def test_expected_waste_minimized_near_daly(self):
        c, m, r = 5.0, 2000.0, 20.0
        opt = daly_interval(c, m, r)
        w_opt = expected_waste(opt, c, m, r)
        assert w_opt < expected_waste(opt / 4, c, m, r)
        assert w_opt < expected_waste(opt * 4, c, m, r)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            young_interval(-1.0, 100.0)
        with pytest.raises(ConfigurationError):
            expected_waste(0.0, 1.0, 100.0)

    def test_tuned_checkpoint_config(self):
        cfg = CheckpointConfig.tuned(4e9, nodes=16, node_mtbf_s=1e6)
        assert cfg.cost_s > 0
        assert cfg.interval_s >= cfg.cost_s
        with pytest.raises(ConfigurationError):
            CheckpointConfig(interval_s=0.0, cost_s=1.0)


class TestFaultySimulation:
    def test_seeded_runs_bit_identical(self, planned_problem):
        base, _ = _simulate(planned_problem, SimConfig(nodes=4))
        fm = FaultModel(
            node_mtbf_s=base.makespan / 2,
            transient_prob=0.05,
            restart_s=base.makespan / 50,
            seed=7,
        )
        ck = CheckpointConfig(
            interval_s=base.makespan / 5, cost_s=base.makespan / 200
        )
        cfg = SimConfig(nodes=4, faults=fm, checkpoint=ck)
        t1, _ = _simulate(planned_problem, cfg)
        t2, _ = _simulate(planned_problem, cfg)
        assert t1.makespan == t2.makespan
        assert [
            (r.uid, r.kind, r.node, r.core, r.start, r.end) for r in t1.records
        ] == [
            (r.uid, r.kind, r.node, r.core, r.start, r.end) for r in t2.records
        ]

    def test_different_seed_changes_schedule(self, planned_problem):
        base, _ = _simulate(planned_problem, SimConfig(nodes=4))
        def cfg(seed):
            return SimConfig(
                nodes=4,
                faults=FaultModel(
                    node_mtbf_s=base.makespan / 2,
                    restart_s=base.makespan / 50,
                    seed=seed,
                ),
            )
        t1, _ = _simulate(planned_problem, cfg(1))
        t2, _ = _simulate(planned_problem, cfg(2))
        assert t1.makespan != t2.makespan

    def test_faults_inflate_makespan_and_stay_valid(self, planned_problem):
        base, _ = _simulate(planned_problem, SimConfig(nodes=4))
        fm = FaultModel(
            node_mtbf_s=base.makespan / 2,
            transient_prob=0.05,
            restart_s=base.makespan / 50,
            seed=7,
        )
        ck = CheckpointConfig(
            interval_s=base.makespan / 5, cost_s=base.makespan / 200
        )
        trace, dag = _simulate(
            planned_problem, SimConfig(nodes=4, faults=fm, checkpoint=ck)
        )
        assert trace.makespan > base.makespan
        assert trace.recovery_count > 0
        assert trace.checkpoint_count > 0
        # Resilience events never collide with DAG uids.
        assert all(
            r.uid < 0 for r in trace.records if r.kind != "compute"
        )
        # The DAG order still holds for the compute schedule.
        validate_schedule(dag, *trace.start_end_maps())
        s = trace.summary()
        assert s["tasks"] == len(trace.compute_records)
        assert s["resilience_overhead_s"] > 0

    def test_benign_fault_model_matches_faults_off(self, planned_problem):
        """Infinite MTBF + no transients must reproduce the fault-free
        schedule bit for bit."""
        base, _ = _simulate(planned_problem, SimConfig(nodes=4))
        benign = SimConfig(
            nodes=4, faults=FaultModel(node_mtbf_s=math.inf, transient_prob=0.0)
        )
        trace, _ = _simulate(planned_problem, benign)
        assert trace.makespan == base.makespan
        assert [
            (r.uid, r.start, r.end) for r in trace.records
        ] == [(r.uid, r.start, r.end) for r in base.records]

    def test_transient_failures_reexecute(self, planned_problem):
        base, _ = _simulate(planned_problem, SimConfig(nodes=4))
        cfg = SimConfig(
            nodes=4,
            faults=FaultModel(
                node_mtbf_s=math.inf,
                transient_prob=0.3,
                max_task_retries=50,
                seed=5,
            ),
        )
        trace, _ = _simulate(planned_problem, cfg)
        assert trace.reexecuted_tasks > 0
        assert trace.makespan > base.makespan
        assert max(r.attempts for r in trace.compute_records) > 1

    def test_unsurvivable_fault_model_rejected(self, planned_problem):
        """restart >= MTBF means recovery can never outpace failures;
        the simulator must refuse rather than loop forever."""
        base, _ = _simulate(planned_problem, SimConfig(nodes=4))
        fm = FaultModel(
            node_mtbf_s=base.makespan / 2, restart_s=base.makespan, seed=0
        )
        with pytest.raises(ConfigurationError):
            _simulate(planned_problem, SimConfig(nodes=4, faults=fm))

    def test_cores_actually_tracked(self, planned_problem):
        """TaskRecord.core must report the executing core, not always 0."""
        trace, _ = _simulate(planned_problem, SimConfig(nodes=2))
        assert {r.core for r in trace.records} != {0}

    def test_checkpointing_reduces_crash_overhead(self, planned_problem):
        """With a harsh MTBF, periodic checkpoints should beat losing
        all volatile work on every crash."""
        base, _ = _simulate(planned_problem, SimConfig(nodes=4))
        fm = FaultModel(node_mtbf_s=base.makespan / 3, restart_s=0.0, seed=2)
        no_ck, _ = _simulate(planned_problem, SimConfig(nodes=4, faults=fm))
        ck = CheckpointConfig(
            interval_s=base.makespan / 20, cost_s=base.makespan / 1e4
        )
        with_ck, _ = _simulate(
            planned_problem, SimConfig(nodes=4, faults=fm, checkpoint=ck)
        )
        assert with_ck.makespan < no_ck.makespan

    def test_gantt_renders_resilience_glyphs(self, planned_problem):
        from repro.runtime import render_gantt

        base, _ = _simulate(planned_problem, SimConfig(nodes=4))
        fm = FaultModel(
            node_mtbf_s=base.makespan / 2,
            restart_s=base.makespan / 50,
            seed=7,
        )
        ck = CheckpointConfig(
            interval_s=base.makespan / 5, cost_s=base.makespan / 50
        )
        trace, _ = _simulate(
            planned_problem, SimConfig(nodes=4, faults=fm, checkpoint=ck)
        )
        chart = render_gantt(trace, width=60, max_nodes=4)
        assert "C=ckpt" in chart and "R=recover" in chart
