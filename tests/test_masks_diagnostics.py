"""Tests for missing-data masks and tiled diagnostics."""

import numpy as np
import pytest

from repro.data import apply_mask, band_mask, disk_mask, random_mask
from repro.exceptions import ShapeError
from repro.tile import (
    build_planned_covariance,
    condition_estimate,
    power_norm_estimate,
    tile_cholesky,
)
from tests.conftest import random_spd_tilematrix


class TestMasks:
    def test_random_mask_fraction(self):
        m = random_mask(1000, 0.2, seed=1)
        assert m.sum() == 200

    def test_random_mask_seeded(self):
        np.testing.assert_array_equal(
            random_mask(100, 0.3, seed=2), random_mask(100, 0.3, seed=2)
        )

    def test_random_mask_bad_fraction(self):
        with pytest.raises(ShapeError):
            random_mask(10, 0.0)

    def test_disk_mask_geometry(self, rng):
        x = rng.uniform(size=(500, 2))
        m = disk_mask(x, [0.5, 0.5], 0.2)
        d = np.linalg.norm(x - [0.5, 0.5], axis=1)
        np.testing.assert_array_equal(m, d <= 0.2)

    def test_disk_mask_validation(self, rng):
        with pytest.raises(ShapeError):
            disk_mask(rng.uniform(size=(5, 2)), [0.5], 0.1)
        with pytest.raises(ShapeError):
            disk_mask(rng.uniform(size=(5, 2)), [0.5, 0.5], 0.0)

    def test_band_mask(self, rng):
        x = rng.uniform(size=(200, 2))
        m = band_mask(x, axis=1, low=0.3, high=0.5)
        assert np.all((x[m, 1] >= 0.3) & (x[m, 1] <= 0.5))

    def test_apply_mask_partition(self, rng):
        x = rng.uniform(size=(50, 2))
        z = rng.standard_normal(50)
        m = random_mask(50, 0.2, seed=3)
        xo, zo, xm, zm = apply_mask(x, z, m)
        assert len(xo) + len(xm) == 50
        assert len(zo) == len(xo) and len(zm) == len(xm)

    def test_apply_mask_rejects_degenerate(self, rng):
        x = rng.uniform(size=(10, 2))
        z = rng.standard_normal(10)
        with pytest.raises(ShapeError):
            apply_mask(x, z, np.ones(10, dtype=bool))

    def test_cloud_gap_prediction_harder_than_random(self, matern):
        """Kriging MSPE under a contiguous cloud gap exceeds MSPE under
        random missingness of the same size — the structured-gap
        regime."""
        from repro.core import kriging_predict, loglikelihood
        from repro.data import sample_gaussian_field
        from repro.ordering import order_points

        theta = np.array([1.0, 0.1, 0.5])
        gen = np.random.default_rng(7)
        x = gen.uniform(size=(500, 2))
        x = x[order_points(x, "morton")]
        z = sample_gaussian_field(matern, theta, x, seed=8)

        cloud = disk_mask(x, [0.5, 0.5], 0.15)
        n_gap = int(cloud.sum())
        rand = random_mask(500, n_gap / 500, seed=9)

        def gap_mspe(mask):
            xo, zo, xm, zm = apply_mask(x, z, mask)
            fac = loglikelihood(
                matern, theta, xo, zo, tile_size=50, nugget=1e-10
            ).factor
            pred = kriging_predict(matern, theta, xo, zo, xm, fac)
            return float(np.mean((pred.mean - zm) ** 2))

        assert gap_mspe(cloud) > gap_mspe(rand)


class TestDiagnostics:
    def test_power_norm_matches_eigh(self):
        tm = random_spd_tilematrix(60, 15, seed=1)
        lam = power_norm_estimate(tm, iterations=60)
        ref = np.linalg.eigvalsh(tm.to_dense()).max()
        assert lam == pytest.approx(ref, rel=1e-3)

    def test_condition_matches_numpy(self):
        tm = random_spd_tilematrix(60, 15, seed=2)
        fac, _ = tile_cholesky(tm.copy())
        cond = condition_estimate(tm, fac, iterations=80)
        ref = np.linalg.cond(tm.to_dense())
        assert cond == pytest.approx(ref, rel=0.05)

    def test_condition_on_covariance(self, matern, locations_200):
        """Stronger correlation -> worse conditioning (the regime where
        precision loss bites, per the paper's Fig. 6 discussion)."""
        conds = {}
        for label, rng_ in (("weak", 0.03), ("strong", 0.3)):
            theta = np.array([1.0, rng_, 0.5])
            mat, rep = build_planned_covariance(
                matern, theta, locations_200, 40, nugget=1e-8
            )
            fac, _ = tile_cholesky(mat.copy(), tile_tol=rep.tile_tol)
            conds[label] = condition_estimate(mat, fac, iterations=40)
        assert conds["strong"] > conds["weak"]

    def test_dimension_check(self):
        tm = random_spd_tilematrix(30, 15, seed=3)
        other = random_spd_tilematrix(45, 15, seed=4)
        fac, _ = tile_cholesky(other)
        with pytest.raises(ShapeError):
            condition_estimate(tm, fac)

    def test_iterations_validated(self):
        tm = random_spd_tilematrix(30, 15, seed=5)
        with pytest.raises(ShapeError):
            power_norm_estimate(tm, iterations=0)
