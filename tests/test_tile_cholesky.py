"""Tests for the tiled Cholesky factorization (all variants)."""

import numpy as np
import pytest

from repro.exceptions import NotPositiveDefiniteError
from repro.tile import (
    TileMatrix,
    build_planned_covariance,
    tile_cholesky,
)
from tests.conftest import random_spd_tilematrix


class TestDenseFP64:
    def test_matches_lapack(self):
        tm = random_spd_tilematrix(64, 16, seed=1)
        ref = np.linalg.cholesky(tm.to_dense())
        fac, stats = tile_cholesky(tm)
        np.testing.assert_allclose(
            fac.to_dense(lower_only=True), ref, atol=1e-11
        )
        assert stats.kernel_counts["potrf"] == 4

    def test_ragged_tiles(self):
        tm = random_spd_tilematrix(57, 16, seed=2)
        ref = np.linalg.cholesky(tm.to_dense())
        fac, _ = tile_cholesky(tm)
        np.testing.assert_allclose(fac.to_dense(lower_only=True), ref, atol=1e-11)

    def test_single_tile(self):
        tm = random_spd_tilematrix(12, 16, seed=3)
        ref = np.linalg.cholesky(tm.to_dense())
        fac, stats = tile_cholesky(tm)
        np.testing.assert_allclose(fac.to_dense(lower_only=True), ref, atol=1e-12)
        assert stats.kernel_counts == {"potrf": 1}

    def test_kernel_counts_closed_form(self):
        tm = random_spd_tilematrix(80, 16, seed=4)
        nt = 5
        _, stats = tile_cholesky(tm)
        assert stats.kernel_counts["potrf"] == nt
        assert stats.kernel_counts["trsm"] == nt * (nt - 1) // 2
        assert stats.kernel_counts["syrk"] == nt * (nt - 1) // 2
        assert stats.kernel_counts["gemm"] == nt * (nt - 1) * (nt - 2) // 6

    def test_indefinite_raises(self):
        a = np.diag([1.0, 1.0, -1.0, 1.0])
        tm = TileMatrix.from_dense(a, 2)
        with pytest.raises(NotPositiveDefiniteError):
            tile_cholesky(tm)


class TestApproximateVariants:
    @pytest.fixture(scope="class")
    def problem(self):
        gen = np.random.default_rng(42)
        from repro.kernels import MaternKernel
        from repro.ordering import order_points

        x = gen.uniform(size=(250, 2))
        x = x[order_points(x, "morton")]
        kern = MaternKernel()
        theta = np.array([1.0, 0.1, 0.5])
        sigma = kern.covariance_matrix(theta, x, nugget=1e-8)
        ref = np.linalg.cholesky(sigma)
        return kern, theta, x, sigma, ref

    def _factor(self, problem, **kwargs):
        kern, theta, x, sigma, ref = problem
        mat, report = build_planned_covariance(
            kern, theta, x, 50, nugget=1e-8, **kwargs
        )
        fac, stats = tile_cholesky(mat, tile_tol=report.tile_tol)
        return fac, stats, sigma, ref

    def test_mp_dense_close_to_fp64(self, problem):
        fac, _, sigma, ref = self._factor(problem, use_mp=True)
        low = fac.to_dense(lower_only=True)
        rel = np.linalg.norm(low @ low.T - sigma) / np.linalg.norm(sigma)
        assert rel < 1e-5

    def test_tlr_close_to_fp64(self, problem):
        fac, _, sigma, ref = self._factor(
            problem, use_tlr=True, band_size=2
        )
        low = fac.to_dense(lower_only=True)
        rel = np.linalg.norm(low @ low.T - sigma) / np.linalg.norm(sigma)
        assert rel < 1e-6

    def test_mp_tlr_close_to_fp64(self, problem):
        fac, _, sigma, ref = self._factor(
            problem, use_mp=True, use_tlr=True, band_size=2
        )
        low = fac.to_dense(lower_only=True)
        rel = np.linalg.norm(low @ low.T - sigma) / np.linalg.norm(sigma)
        assert rel < 1e-5

    def test_tlr_keeps_low_rank_structure(self, problem):
        fac, stats, _, _ = self._factor(problem, use_tlr=True, band_size=1)
        counts = fac.structure_counts()
        assert any(k.startswith("lr/") for k in counts)
        assert stats.max_rank_seen > 0

    def test_tighter_tolerance_more_accurate(self, problem):
        kern, theta, x, sigma, _ = problem
        errs = []
        for tol in (1e-4, 1e-8):
            mat, report = build_planned_covariance(
                kern, theta, x, 50, nugget=1e-8,
                use_tlr=True, tlr_tol=tol, band_size=1,
            )
            fac, _ = tile_cholesky(mat, tile_tol=report.tile_tol)
            low = fac.to_dense(lower_only=True)
            errs.append(np.linalg.norm(low @ low.T - sigma))
        assert errs[1] < errs[0]
