"""Tests for the precision/structure decision logic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.perfmodel import A64FX
from repro.tile import (
    Precision,
    TileLayout,
    TileMatrix,
    band_precision_map,
    frobenius_precision_map,
    plan_summary,
    structure_map,
)
from repro.tile.decisions import TilePlan


def make_norms(layout, decay=0.5):
    """Tile norms decaying geometrically off the diagonal."""
    return {
        (i, j): decay ** (i - j) for i, j in layout.lower_tiles()
    }


class TestFrobeniusRule:
    def test_diagonal_pinned_fp64(self):
        layout = TileLayout(40, 10)
        norms = make_norms(layout, decay=1e-6)
        pm = frobenius_precision_map(norms, 10.0, layout.nt)
        for k in range(layout.nt):
            assert pm[(k, k)] is Precision.FP64

    def test_small_tiles_demoted(self):
        layout = TileLayout(40, 10)
        norms = {key: (1.0 if key[0] == key[1] else 1e-30)
                 for key in layout.lower_tiles()}
        pm = frobenius_precision_map(norms, 2.0, layout.nt)
        assert pm[(1, 0)] is Precision.FP16

    def test_large_tiles_stay_fp64(self):
        layout = TileLayout(40, 10)
        norms = {key: 1.0 for key in layout.lower_tiles()}
        pm = frobenius_precision_map(norms, 2.0, layout.nt)
        assert pm[(3, 0)] is Precision.FP64

    def test_threshold_formula(self):
        """A tile exactly at the FP32 threshold must NOT be demoted
        (strict inequality), just below must be."""
        nt, global_norm, u_high = 4, 1.0, 1e-8
        threshold32 = u_high * global_norm / (nt * Precision.FP32.unit_roundoff)
        norms = {(1, 0): threshold32, (2, 0): threshold32 * 0.999,
                 (0, 0): 1.0, (1, 1): 1.0, (2, 2): 1.0,
                 (2, 1): 1.0, (3, 3): 1.0, (3, 0): 1.0, (3, 1): 1.0,
                 (3, 2): 1.0}
        pm = frobenius_precision_map(
            norms, global_norm, nt, ladder=(Precision.FP32,), u_high=u_high
        )
        assert pm[(1, 0)] is Precision.FP64
        assert pm[(2, 0)] is Precision.FP32

    def test_error_bound_property(self, rng):
        """||A_hat - A||_F <= u_high ||A||_F after demotion."""
        n, b = 120, 20
        gen = np.random.default_rng(5)
        a = gen.standard_normal((n, n))
        a = a @ a.T / n + np.eye(n)
        # Scale off-diagonal tiles down so demotion happens.
        layout = TileLayout(n, b)
        for i, j in layout.lower_tiles():
            if i != j:
                scale = 1e-7 ** min(i - j, 2)
                a[layout.block_slice(i), layout.block_slice(j)] *= scale
                a[layout.block_slice(j), layout.block_slice(i)] *= scale
        tm = TileMatrix.from_dense(a, b)
        norms = tm.tile_norms()
        global_norm = tm.global_fro_norm()
        u_high = 1e-8
        pm = frobenius_precision_map(
            norms, global_norm, layout.nt, u_high=u_high, tile_size=b
        )
        demoted = TileMatrix(layout)
        for (i, j), tile in tm.items():
            demoted.set(i, j, tile.astype(pm[(i, j)]))
        err = np.linalg.norm(demoted.to_dense() - a)
        assert err <= u_high * global_norm * 1.01
        # And demotion actually happened (the test is not vacuous).
        assert any(p is not Precision.FP64 for p in pm.values())

    def test_invalid_global_norm(self):
        with pytest.raises(ConfigurationError):
            frobenius_precision_map({}, -1.0, 4)

    @given(u_high=st.floats(1e-12, 1e-2), decay=st.floats(0.01, 0.9))
    @settings(max_examples=25, deadline=None)
    def test_property_monotone_in_offset(self, u_high, decay):
        """With norms decaying off-diagonal, precision is monotone
        non-increasing with offset."""
        layout = TileLayout(60, 10)
        norms = make_norms(layout, decay)
        pm = frobenius_precision_map(norms, 10.0, layout.nt, u_high=u_high)
        for j in range(layout.nt):
            precisions = [int(pm[(i, j)]) for i in range(j, layout.nt)]
            assert precisions == sorted(precisions, reverse=True)


class TestBandRule:
    def test_three_band_layout(self):
        layout = TileLayout(60, 10)
        pm = band_precision_map(layout, fp64_band=2, fp32_band=4)
        assert pm[(0, 0)] is Precision.FP64
        assert pm[(1, 0)] is Precision.FP64
        assert pm[(2, 0)] is Precision.FP32
        assert pm[(3, 0)] is Precision.FP32
        assert pm[(4, 0)] is Precision.FP16

    def test_two_precision_variant(self):
        layout = TileLayout(40, 10)
        pm = band_precision_map(layout, fp64_band=1)
        assert pm[(3, 0)] is Precision.FP32

    def test_invalid_bands(self):
        layout = TileLayout(40, 10)
        with pytest.raises(ConfigurationError):
            band_precision_map(layout, fp64_band=0)
        with pytest.raises(ConfigurationError):
            band_precision_map(layout, fp64_band=3, fp32_band=2)


class TestStructureMap:
    def _setup(self):
        layout = TileLayout(120, 30)
        precisions = {k: Precision.FP64 for k in layout.lower_tiles()}
        return layout, precisions

    def test_band_forced_dense(self):
        layout, precisions = self._setup()
        ranks = {k: 1 for k in layout.lower_tiles() if k[0] != k[1]}
        sm = structure_map(layout, ranks, precisions, None,
                           band_size_dense=2, mode="rank")
        assert not sm[(1, 0)]  # inside band
        assert sm[(2, 0)]      # outside band, tiny rank

    def test_rank_mode_threshold(self):
        layout, precisions = self._setup()
        ranks = {(2, 0): 14, (3, 0): 16}
        sm = structure_map(layout, ranks, precisions, None,
                           max_rank_fraction=0.5, mode="rank")
        assert sm[(2, 0)]       # 14 < 15 = 0.5*30
        assert not sm[(3, 0)]   # 16 > 15

    def test_perfmodel_mode_uses_crossover(self):
        from repro.perfmodel import crossover_rank

        layout = TileLayout(4 * 2700, 2700)
        precisions = {k: Precision.FP64 for k in layout.lower_tiles()}
        xover = crossover_rank(2700, A64FX)
        ranks = {(2, 0): xover - 50, (3, 0): xover + 400}
        sm = structure_map(layout, ranks, precisions, A64FX,
                           mode="perfmodel", max_rank_fraction=0.5)
        assert sm[(2, 0)]
        assert not sm[(3, 0)]

    def test_perfmodel_requires_machine(self):
        layout, precisions = self._setup()
        with pytest.raises(ConfigurationError):
            structure_map(layout, {}, precisions, None, mode="perfmodel")

    def test_unknown_mode(self):
        layout, precisions = self._setup()
        with pytest.raises(ConfigurationError):
            structure_map(layout, {}, precisions, None, mode="magic")

    def test_missing_rank_means_dense(self):
        layout, precisions = self._setup()
        sm = structure_map(layout, {}, precisions, None, mode="rank")
        assert not any(sm.values())


class TestTilePlan:
    def test_grids_and_counts(self):
        layout = TileLayout(60, 20)
        precisions = {k: Precision.FP64 for k in layout.lower_tiles()}
        precisions[(2, 0)] = Precision.FP16
        use_lr = {k: False for k in layout.lower_tiles()}
        use_lr[(2, 0)] = True
        plan = TilePlan(layout, precisions, use_lr)
        grid = plan.precision_grid()
        assert grid[2, 0] == 16
        assert grid[0, 2] == 0  # upper not stored
        sgrid = plan.structure_grid()
        assert sgrid[2, 0] == 2
        assert sgrid[1, 0] == 1
        counts = plan.counts()
        assert counts["lr/FP16"] == 1
        assert counts["dense/FP64"] == 5

    def test_plan_summary_memory(self):
        layout = TileLayout(60, 20)
        precisions = {k: Precision.FP32 for k in layout.lower_tiles()}
        use_lr = {k: False for k in layout.lower_tiles()}
        plan = TilePlan(layout, precisions, use_lr)
        s = plan_summary(plan)
        assert s["memory_reduction"] == pytest.approx(0.5)
        assert s["bytes_dense_fp64"] == 6 * 400 * 8
