"""Tests for the anisotropic and bivariate Matérn kernel extensions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.kernels import (
    AnisotropicMaternKernel,
    BivariateMaternKernel,
    MaternKernel,
    parsimonious_rho_max,
    stack_bivariate,
)


class TestAnisotropicMatern:
    def test_reduces_to_isotropic(self, rng):
        x = rng.uniform(size=(25, 2))
        iso = MaternKernel()(np.array([1.0, 0.2, 0.7]), x)
        ani = AnisotropicMaternKernel()(
            np.array([1.0, 0.2, 0.2, 0.3, 0.7]), x
        )
        np.testing.assert_allclose(ani, iso, atol=1e-13)

    def test_positive_definite(self, rng):
        x = rng.uniform(size=(60, 2))
        c = AnisotropicMaternKernel().covariance_matrix(
            np.array([1.0, 0.4, 0.05, 0.7, 0.8]), x
        )
        assert np.linalg.eigvalsh(c).min() > 0.0

    def test_major_axis_decays_slower(self):
        """Correlation along the major axis exceeds the minor axis at
        equal distance."""
        kern = AnisotropicMaternKernel()
        theta = np.array([1.0, 0.5, 0.1, 0.0, 0.5])  # major along x
        origin = np.array([[0.0, 0.0]])
        along_x = kern(theta, origin, np.array([[0.3, 0.0]]))[0, 0]
        along_y = kern(theta, origin, np.array([[0.0, 0.3]]))[0, 0]
        assert along_x > along_y

    def test_rotation_moves_major_axis(self):
        kern = AnisotropicMaternKernel()
        theta = np.array([1.0, 0.5, 0.1, np.pi / 2 - 1e-12, 0.5])
        assert kern.effective_range(theta, [0.0, 1.0]) == pytest.approx(
            0.5, rel=1e-9
        )
        assert kern.effective_range(theta, [1.0, 0.0]) == pytest.approx(
            0.1, rel=1e-9
        )

    def test_symmetry(self, rng):
        x = rng.uniform(size=(20, 2))
        c = AnisotropicMaternKernel().covariance_matrix(
            np.array([1.0, 0.3, 0.15, 0.4, 1.2]), x
        )
        np.testing.assert_allclose(c, c.T, atol=1e-14)

    @given(angle=st.floats(-1.5, 1.5), ratio=st.floats(0.1, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_property_diagonal_is_variance(self, angle, ratio):
        kern = AnisotropicMaternKernel()
        theta = np.array([2.0, 0.4, 0.4 * ratio, angle, 0.5])
        gen = np.random.default_rng(1)
        x = gen.uniform(size=(10, 2))
        c = kern.covariance_matrix(theta, x)
        np.testing.assert_allclose(np.diag(c), 2.0, rtol=1e-12)


class TestParsimoniousBound:
    def test_equal_smoothness_bound_is_one(self):
        assert parsimonious_rho_max(0.7, 0.7) == pytest.approx(1.0)

    def test_unequal_smoothness_below_one(self):
        assert parsimonious_rho_max(0.5, 2.5) < 1.0

    def test_symmetric_in_arguments(self):
        assert parsimonious_rho_max(0.4, 1.3) == pytest.approx(
            parsimonious_rho_max(1.3, 0.4)
        )


class TestBivariateMatern:
    THETA = np.array([1.3, 0.7, 0.15, 0.5, 1.5, 0.6])

    def test_stack_layout(self, rng):
        space = rng.uniform(size=(5, 2))
        x = stack_bivariate(space)
        assert x.shape == (10, 3)
        np.testing.assert_array_equal(x[:5, 2], 0.0)
        np.testing.assert_array_equal(x[5:, 2], 1.0)

    def test_stack_rejects_3d(self):
        with pytest.raises(ShapeError):
            stack_bivariate(np.zeros((4, 3)))

    def test_marginal_variances(self, rng):
        kern = BivariateMaternKernel()
        x = stack_bivariate(rng.uniform(size=(8, 2)))
        c = kern.covariance_matrix(self.THETA, x)
        np.testing.assert_allclose(np.diag(c)[:8], 1.3, rtol=1e-12)
        np.testing.assert_allclose(np.diag(c)[8:], 0.7, rtol=1e-12)

    def test_colocated_cross_correlation(self, rng):
        kern = BivariateMaternKernel()
        space = rng.uniform(size=(6, 2))
        x = stack_bivariate(space)
        c = kern.covariance_matrix(self.THETA, x)
        rho = kern.colocated_correlation(self.THETA)
        expected = rho * np.sqrt(1.3 * 0.7)
        for i in range(6):
            assert c[i, 6 + i] == pytest.approx(expected, rel=1e-10)

    def test_positive_definite_across_sweep(self, rng):
        kern = BivariateMaternKernel()
        x = stack_bivariate(rng.uniform(size=(30, 2)))
        for beta in (-0.95, -0.3, 0.0, 0.5, 0.95):
            theta = np.array([1.0, 2.0, 0.2, 0.4, 2.2, beta])
            c = kern.covariance_matrix(theta, x)
            assert np.linalg.eigvalsh(c).min() > -1e-10

    def test_marginal_blocks_are_matern(self, rng):
        kern = BivariateMaternKernel()
        space = rng.uniform(size=(10, 2))
        x = stack_bivariate(space)
        c = kern.covariance_matrix(self.THETA, x)
        m1 = MaternKernel()(np.array([1.3, 0.15, 0.5]), space)
        np.testing.assert_allclose(c[:10, :10], m1, atol=1e-12)
        m2 = MaternKernel()(np.array([0.7, 0.15, 1.5]), space)
        np.testing.assert_allclose(c[10:, 10:], m2, atol=1e-12)

    def test_rejects_bad_variable_ids(self):
        kern = BivariateMaternKernel()
        x = np.array([[0.1, 0.2, 2.0]])
        with pytest.raises(ShapeError):
            kern(self.THETA, x)

    def test_sampleable_and_fittable(self, rng):
        """End-to-end: sample a bivariate field and evaluate its
        likelihood through the tiled pipeline."""
        from repro.core import loglikelihood
        from repro.data import sample_gaussian_field

        kern = BivariateMaternKernel()
        space = rng.uniform(size=(40, 2))
        x = stack_bivariate(space)
        z = sample_gaussian_field(kern, self.THETA, x, seed=3)
        res = loglikelihood(kern, self.THETA, x, z, tile_size=20)
        assert np.isfinite(res.value)

    def test_beta_zero_decouples(self, rng):
        kern = BivariateMaternKernel()
        theta = self.THETA.copy()
        theta[5] = 1e-13
        x = stack_bivariate(rng.uniform(size=(6, 2)))
        c = kern.covariance_matrix(theta, x)
        np.testing.assert_allclose(c[:6, 6:], 0.0, atol=1e-12)
