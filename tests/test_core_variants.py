"""Tests for compute-variant configuration."""

import pytest

from repro.core import DENSE_FP64, MP_DENSE, MP_DENSE_TLR, VariantConfig, get_variant
from repro.exceptions import ConfigurationError


class TestPresets:
    def test_dense_reference(self):
        assert not DENSE_FP64.use_mp
        assert not DENSE_FP64.use_tlr

    def test_mp_dense(self):
        assert MP_DENSE.use_mp and not MP_DENSE.use_tlr

    def test_mp_dense_tlr(self):
        assert MP_DENSE_TLR.use_mp and MP_DENSE_TLR.use_tlr

    def test_default_accuracy_1e8(self):
        """Both adaptive knobs default to the paper's 1e-8 tolerance."""
        assert MP_DENSE_TLR.mp_accuracy == pytest.approx(1e-8)
        assert MP_DENSE_TLR.tlr_tol == pytest.approx(1e-8)


class TestLookup:
    def test_by_name(self):
        assert get_variant("dense-fp64") is DENSE_FP64
        assert get_variant("mp-dense") is MP_DENSE

    def test_aliases(self):
        assert get_variant("tlr") is MP_DENSE_TLR
        assert get_variant("FP64") is DENSE_FP64
        assert get_variant("mp_dense_tlr") is MP_DENSE_TLR

    def test_config_passthrough(self):
        assert get_variant(MP_DENSE) is MP_DENSE

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_variant("quantum")


class TestValidation:
    def test_bad_mp_mode(self):
        with pytest.raises(ConfigurationError):
            VariantConfig(name="x", mp_mode="chaotic")

    def test_bad_structure_mode(self):
        with pytest.raises(ConfigurationError):
            VariantConfig(name="x", structure_mode="vibes")

    def test_hgemm_requires_explicit_mode(self):
        with pytest.raises(ConfigurationError):
            VariantConfig(name="x", fp16_accumulate_fp32=False)
        VariantConfig(
            name="x", fp16_accumulate_fp32=False, shgemm_mode="hgemm"
        )

    def test_with_derives(self):
        derived = MP_DENSE_TLR.with_(band_size=5, name="wide-band")
        assert derived.band_size == 5
        assert derived.use_tlr
        assert MP_DENSE_TLR.band_size == 2  # original untouched

    def test_assembly_kwargs_complete(self):
        kwargs = MP_DENSE_TLR.assembly_kwargs()
        assert kwargs["use_mp"] and kwargs["use_tlr"]
        assert kwargs["structure_mode"] == "rank"
        assert "machine" in kwargs
