"""Tests for the production resilience layer (PR 6).

Covers four layers:

* the primitives — :class:`~repro.resilience.RetryPolicy`,
  :class:`~repro.resilience.Deadline` / ``CancellationToken``,
  :class:`~repro.resilience.CircuitBreaker`, ``require_finite``,
  ``degradation_steps`` and the :class:`ResilienceConfig` wiring;
* the threaded DAG executor — worker crashes drain the pool instead
  of deadlocking, seeded chaos is bit-reproducible, retries absorb
  transient injected faults, deadlines cancel cooperatively;
* the fit path — the graceful degradation ladder ends in a finite
  loglikelihood under total FP16-overflow corruption, input NaN/inf
  is rejected at the API boundary, ``time_budget_s`` is honored;
* the serving path — thread-safe cross-covariance LRU under
  concurrent predicts, batch retry, the consecutive-failure circuit
  breaker with its cache-clearing safe rebuild, and
  ``deadline_s`` cancellation without thread leaks.

The pinned-value tests at the bottom freeze the hooks-disabled
results bit-for-bit: resilience must be zero-effect when off.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import ExaGeoStatModel, loglikelihood
from repro.core.engine import EvaluationEngine
from repro.core.mle import fit_mle
from repro.core.serving import PredictionEngine
from repro.core.variants import DENSE_FP64, MP_DENSE, MP_DENSE_TLR
from repro.data import sample_gaussian_field
from repro.exceptions import (
    ChaosError,
    ConfigurationError,
    DeadlineExceededError,
    NotPositiveDefiniteError,
    NumericalCorruptionError,
    ParameterError,
    SchedulingError,
)
from repro.kernels import MaternKernel
from repro.ordering import order_points
from repro.resilience import (
    CancellationToken,
    ChaosConfig,
    ChaosInjector,
    CircuitBreaker,
    Deadline,
    DegradationPolicy,
    ResilienceConfig,
    RetryPolicy,
    degradation_steps,
    require_finite,
)
from repro.runtime import execute_cholesky_parallel
from repro.tile.precision import Precision
from repro.tile.tile import DenseTile
from tests.conftest import random_spd_tilematrix

THETA = np.array([1.0, 0.1, 0.5])
NUGGET = 1.0e-8

#: No real sleeping in tests; still three attempts.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, max_delay_s=0.0)


@pytest.fixture(scope="module")
def pinned():
    """The pinned dataset behind every bit-identity constant below."""
    gen = np.random.default_rng(42)
    x = gen.uniform(size=(120, 2))
    x = x[order_points(x, "morton")]
    x_test = gen.uniform(size=(25, 2))
    kern = MaternKernel()
    z = sample_gaussian_field(kern, THETA, x, seed=7)
    return kern, x, z, x_test


@pytest.fixture(scope="module")
def small():
    """A 64-point problem: fast enough for chaos/fit tests."""
    gen = np.random.default_rng(11)
    x = gen.uniform(size=(64, 2))
    x = x[order_points(x, "morton")]
    kern = MaternKernel()
    z = sample_gaussian_field(kern, THETA, x, seed=3)
    return kern, x, z


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_deterministic_and_bounded(self):
        p = RetryPolicy()
        assert p.delay_s(2, site=5) == p.delay_s(2, site=5)
        # Exponential growth through the early attempts ...
        assert p.delay_s(3) > p.delay_s(1)
        # ... capped (including jitter headroom) at max_delay_s.
        assert p.delay_s(50) <= p.max_delay_s * (1.0 + p.jitter)

    def test_classification(self):
        p = RetryPolicy()
        assert p.is_retryable(NumericalCorruptionError("x", tile_index=(0, 0)))
        assert p.is_retryable(ChaosError("x", site="t"))
        # A deterministic indefinite matrix is NOT transient.
        assert not p.is_retryable(NotPositiveDefiniteError("x"))
        assert not p.is_retryable(ValueError("x"))

    def test_call_retries_then_succeeds(self):
        observed = []

        def flaky(attempt):
            if attempt < 3:
                raise ChaosError("transient", site="t")
            return attempt

        result = FAST_RETRY.call(
            flaky, site=7, on_retry=lambda a, e: observed.append(a)
        )
        assert result == 3
        assert observed == [1, 2]

    def test_call_exhausts_budget(self):
        calls = []

        def always(attempt):
            calls.append(attempt)
            raise ChaosError("persistent", site="t")

        with pytest.raises(ChaosError):
            FAST_RETRY.call(always)
        assert calls == [1, 2, 3]

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def bad(attempt):
            calls.append(attempt)
            raise NotPositiveDefiniteError("indefinite")

        with pytest.raises(NotPositiveDefiniteError):
            FAST_RETRY.call(bad)
        assert calls == [1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)


class TestDeadlineAndCancellation:
    def test_after_none_propagates(self):
        assert Deadline.after(None) is None
        assert isinstance(Deadline.after(1.0), Deadline)

    def test_expiry(self):
        d = Deadline(0.0)
        assert d.expired
        assert d.remaining() <= 0.0
        with pytest.raises(DeadlineExceededError, match="deadline"):
            d.check("unit test")

    def test_live_deadline_passes(self):
        d = Deadline(60.0)
        assert not d.expired
        d.check("unit test")  # must not raise

    def test_token_latches_first_reason(self):
        tok = CancellationToken()
        assert not tok.cancelled
        tok.check("ok")  # live token: no raise
        tok.cancel("boom")
        tok.cancel("later")  # idempotent; first reason wins
        assert tok.cancelled
        assert tok.reason == "boom"
        with pytest.raises(DeadlineExceededError, match="boom"):
            tok.check("unit test")


class TestCircuitBreaker:
    def test_trips_at_threshold_and_recovers(self):
        tripped = []
        br = CircuitBreaker(threshold=3, on_trip=lambda: tripped.append(1))
        assert not br.record_failure()
        assert not br.record_failure()
        assert br.record_failure()  # third consecutive: trip
        assert br.open and br.trips == 1 and tripped == [1]
        # Already open: further failures do not re-trip.
        assert not br.record_failure()
        assert br.trips == 1
        # Half-open semantics: the next success closes it.
        br.record_success()
        assert not br.open and br.consecutive_failures == 0

    def test_success_resets_streak(self):
        br = CircuitBreaker(threshold=2)
        br.record_failure()
        br.record_success()
        assert not br.record_failure()  # streak restarted
        assert not br.open

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestRequireFinite:
    def test_nan_names_argument_and_index(self):
        arr = np.zeros(9)
        arr[4] = np.nan
        with pytest.raises(ParameterError, match=r"'obs'.*NaN.*flat index 4"):
            require_finite("obs", arr)

    def test_inf_detected(self):
        with pytest.raises(ValueError, match="infinite value"):
            require_finite("x", np.array([[0.0, np.inf]]))

    def test_empty_rejected(self):
        with pytest.raises(ParameterError, match="empty"):
            require_finite("x", np.empty(0))

    def test_clean_passes(self):
        require_finite("x", np.ones((3, 2)))  # must not raise


class TestDegradationLadderShape:
    def test_tlr_widens_band_then_falls_to_dense(self):
        steps = degradation_steps(MP_DENSE_TLR, DegradationPolicy())
        assert len(steps) == 2
        assert steps[0].use_tlr  # band widened, structure kept
        band0 = MP_DENSE_TLR.band_size if isinstance(
            MP_DENSE_TLR.band_size, int) else 2
        assert steps[0].band_size > band0
        assert steps[-1].name == "dense-fp64"
        assert not steps[-1].use_mp and not steps[-1].use_tlr
        assert steps[-1].workers == MP_DENSE_TLR.workers

    def test_mp_dense_falls_straight_to_fp64(self):
        steps = degradation_steps(MP_DENSE, DegradationPolicy())
        assert [s.name for s in steps] == ["dense-fp64"]

    def test_dense_fp64_has_nowhere_to_fall(self):
        assert degradation_steps(DENSE_FP64, DegradationPolicy()) == []

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            DegradationPolicy(max_failure_fraction=1.5)
        with pytest.raises(ConfigurationError):
            DegradationPolicy(min_evaluations=0)
        with pytest.raises(ConfigurationError):
            DegradationPolicy(widen_band_factor=1)


class TestResilienceConfig:
    def test_inert_config_is_inert(self):
        cfg = ResilienceConfig()
        assert not cfg.chaos_enabled
        assert not cfg.task_level
        assert not cfg.active
        assert cfg.resolve_chaos() is None
        assert cfg.bind() is cfg

    def test_zero_rate_chaos_stays_disabled(self):
        cfg = ResilienceConfig(chaos=ChaosConfig())
        assert not cfg.chaos_enabled and not cfg.task_level

    def test_layer_activation(self):
        assert ResilienceConfig(retry=FAST_RETRY).task_level
        deg = ResilienceConfig(degradation=DegradationPolicy())
        assert deg.active and not deg.task_level
        assert ResilienceConfig(
            chaos=ChaosConfig(tile_nan_rate=0.1)).task_level

    def test_bind_shares_one_injector(self):
        cfg = ResilienceConfig(chaos=ChaosConfig(tile_nan_rate=0.1))
        bound = cfg.bind()
        assert isinstance(bound.chaos, ChaosInjector)
        assert bound.bind() is bound  # re-binding is a no-op
        assert bound.resolve_chaos() is bound.chaos


class TestChaosInjector:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(tile_nan_rate=1.5)
        with pytest.raises(ConfigurationError):
            ChaosConfig(task_delay_s=-1.0)

    def test_schedule_is_seeded_not_stateful(self):
        """Two injectors with one config fail the identical task set."""
        cfg = ChaosConfig(seed=21, task_fail_rate=0.4)

        def failures(injector):
            epoch = injector.next_epoch()
            failed = set()
            for uid in range(60):
                try:
                    injector.perturb_task(epoch, uid, 1)
                except ChaosError:
                    failed.add(uid)
            return failed

        a, b = failures(ChaosInjector(cfg)), failures(ChaosInjector(cfg))
        assert a == b and 0 < len(a) < 60

    def test_retry_rerolls_the_fate(self):
        """Attempt k+1 draws a fresh decision — the transient model."""
        inj = ChaosInjector(ChaosConfig(seed=21, task_fail_rate=0.5))
        epoch = inj.next_epoch()
        outcomes = set()
        for attempt in range(1, 9):
            try:
                inj.perturb_task(epoch, 3, attempt)
                outcomes.add("ok")
            except ChaosError:
                outcomes.add("fail")
        assert outcomes == {"ok", "fail"}

    def test_overflow_corruption_targets_fp16_only(self):
        inj = ChaosInjector(ChaosConfig(seed=1, tile_overflow_rate=1.0))
        safe = DenseTile(np.eye(4), Precision.FP64)
        assert inj.corrupt_tile(safe, 1, 0, 1) is safe  # untouched
        fp16 = DenseTile(np.eye(4), Precision.FP16)
        hit = inj.corrupt_tile(fp16, 1, 0, 1)
        assert hit is not fp16
        assert np.abs(hit.to_dense64()).max() >= 6.5e4  # overflows binary16
        assert inj.stats.corrupted_tiles == 1

    def test_nan_corruption_is_a_copy(self):
        inj = ChaosInjector(ChaosConfig(seed=1, tile_nan_rate=1.0))
        tile = DenseTile(np.eye(4), Precision.FP64)
        hit = inj.corrupt_tile(tile, 1, 5, 1)
        assert np.isnan(hit.to_dense64()).sum() == 1
        assert np.array_equal(tile.to_dense64(), np.eye(4))  # original intact


# ----------------------------------------------------------------------
# Threaded DAG executor: crashes, chaos, deadlines
# ----------------------------------------------------------------------
class TestExecutorResilience:
    def test_worker_crash_drains_pool(self):
        """A crashing task must propagate its error and join every
        worker — the seed executor deadlocked here (satellite 1)."""
        tm = random_spd_tilematrix(96, 16, seed=4)
        before = threading.active_count()
        with pytest.raises(SchedulingError) as excinfo:
            execute_cholesky_parallel(
                tm, workers=4,
                chaos=ChaosConfig(seed=2, task_fail_rate=1.0),
            )
        assert isinstance(excinfo.value.__cause__, ChaosError)
        deadline = time.monotonic() + 5.0
        while threading.active_count() > before:
            assert time.monotonic() < deadline, "worker threads leaked"
            time.sleep(0.01)

    def test_retry_absorbs_transient_chaos_bit_identically(self):
        """Re-rolled attempts recompute the same tiles, so a run whose
        injected failures are all absorbed matches the plain run."""
        from repro.tile import tile_cholesky

        tm = random_spd_tilematrix(96, 16, seed=4)
        ref, _ = tile_cholesky(tm.copy())
        par, report = execute_cholesky_parallel(
            tm, workers=4,
            retry=RetryPolicy(max_attempts=8, base_delay_s=0.0,
                              max_delay_s=0.0),
            chaos=ChaosConfig(seed=6, task_fail_rate=0.2),
        )
        assert report.chaos_events > 0 and report.retries > 0
        np.testing.assert_array_equal(
            ref.to_dense(lower_only=True), par.to_dense(lower_only=True)
        )

    def test_expired_deadline_cancels_cleanly(self):
        tm = random_spd_tilematrix(96, 16, seed=4)
        before = threading.active_count()
        t0 = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            execute_cholesky_parallel(tm, workers=4, deadline=Deadline(0.0))
        assert time.monotonic() - t0 < 5.0
        deadline = time.monotonic() + 5.0
        while threading.active_count() > before:
            assert time.monotonic() < deadline, "worker threads leaked"
            time.sleep(0.01)


class TestChaosReproducibility:
    def test_seeded_likelihood_chaos_is_bit_reproducible(self, small):
        """Satellite 4a: the whole chaos experiment — values, retry
        tallies and injection counts — repeats bit-for-bit."""
        kern, x, z = small

        def one_run():
            injector = ChaosInjector(
                ChaosConfig(seed=17, tile_nan_rate=0.15)
            )
            cfg = ResilienceConfig(retry=FAST_RETRY, chaos=injector)
            result = loglikelihood(
                kern, THETA, x, z, tile_size=16,
                variant="mp-dense-tlr-recover", nugget=NUGGET,
                resilience=cfg,
            )
            return (result.value, result.stats.retries,
                    injector.stats.events)

        first, second = one_run(), one_run()
        assert first == second
        assert first[2] > 0, "chaos at 15% injected nothing"


# ----------------------------------------------------------------------
# Fit path: degradation ladder, budgets, validation
# ----------------------------------------------------------------------
class TestFitDegradation:
    def test_ladder_recovers_finite_loglik_under_fp16_overflow(self, small):
        """Satellite 4b: with every FP16 tile overflow-corrupted on
        every attempt, only the FP64 rung can complete — and the
        report must record the journey."""
        kern, x, z = small
        fp16_variant = MP_DENSE.with_(
            name="mp-band-fp16", mp_mode="band",
            mp_fp64_band=1, mp_fp32_band=2,
        )
        cfg = ResilienceConfig(
            retry=FAST_RETRY,
            degradation=DegradationPolicy(max_failure_fraction=0.5),
            chaos=ChaosConfig(seed=29, tile_overflow_rate=1.0),
        )
        result = fit_mle(
            kern, x, z, tile_size=16, variant=fp16_variant,
            theta0=THETA, max_iter=3, nugget=NUGGET, resilience=cfg,
        )
        assert np.isfinite(result.loglik)
        assert result.variant == "dense-fp64"
        deg = result.degradation
        assert deg is not None and deg.recovered
        assert deg.variant_path[0] == "mp-band-fp16"
        assert deg.variant_path[-1] == "dense-fp64"
        assert all(a.step == "downgrade" for a in deg.actions)
        assert len(deg.actions) >= 1
        # attempts counts the first rung too: one per variant tried.
        assert deg.attempts == len(deg.variant_path)

    def test_healthy_fit_records_no_degradation(self, small):
        kern, x, z = small
        plain = fit_mle(kern, x, z, tile_size=16, variant="mp-dense-tlr",
                        theta0=THETA, max_iter=4, nugget=NUGGET)
        guarded = fit_mle(
            kern, x, z, tile_size=16, variant="mp-dense-tlr",
            theta0=THETA, max_iter=4, nugget=NUGGET,
            resilience=ResilienceConfig(degradation=DegradationPolicy()),
        )
        assert guarded.degradation is None
        assert guarded.variant == plain.variant
        np.testing.assert_array_equal(guarded.theta, plain.theta)
        assert guarded.loglik == plain.loglik

    def test_zero_time_budget_raises_clearly(self, small):
        kern, x, z = small
        with pytest.raises(ParameterError, match="budget"):
            fit_mle(kern, x, z, tile_size=16, variant="dense-fp64",
                    theta0=THETA, max_iter=3, nugget=NUGGET,
                    time_budget_s=0.0)

    def test_generous_time_budget_changes_nothing(self, small):
        kern, x, z = small
        plain = fit_mle(kern, x, z, tile_size=16, variant="dense-fp64",
                        theta0=THETA, max_iter=3, nugget=NUGGET)
        budgeted = fit_mle(kern, x, z, tile_size=16, variant="dense-fp64",
                           theta0=THETA, max_iter=3, nugget=NUGGET,
                           time_budget_s=300.0)
        np.testing.assert_allclose(budgeted.theta, plain.theta, rtol=1e-12)
        np.testing.assert_allclose(budgeted.loglik, plain.loglik,
                                   rtol=1e-12)


class TestEvaluationEngineHealth:
    def test_health_tracks_failures_and_streaks(self, small):
        kern, x, z = small
        engine = EvaluationEngine(kern, x, z, tile_size=16,
                                  variant="mp-dense-tlr", nugget=NUGGET)
        engine.evaluate(THETA)
        h = engine.health()
        assert (h.calls, h.failures) == (1, 0)
        assert h.ok and h.error_rate == 0.0
        with pytest.raises(ValueError):
            engine.evaluate(np.array([1.0, -0.5, 0.5]))
        h = engine.health()
        assert (h.calls, h.failures, h.consecutive_failures) == (2, 1, 1)
        assert not h.ok and 0.0 < h.error_rate <= 0.5
        assert "1 failure" in h.summary()
        engine.evaluate(THETA)  # success closes the streak
        assert engine.health().consecutive_failures == 0


class TestInputValidation:
    """Satellite 3: NaN/inf rejected at the boundary, by name."""

    def test_loglikelihood_rejects_bad_observations(self, small):
        kern, x, z = small
        bad = z.copy()
        bad[5] = np.nan
        with pytest.raises(ValueError, match=r"'z'.*flat index 5"):
            loglikelihood(kern, THETA, x, bad, tile_size=16,
                          variant="dense-fp64", nugget=NUGGET)

    def test_loglikelihood_rejects_bad_locations(self, small):
        kern, x, z = small
        bad = x.copy()
        bad[2, 1] = np.inf
        with pytest.raises(ValueError, match="'x'"):
            loglikelihood(kern, THETA, bad, z, tile_size=16,
                          variant="dense-fp64", nugget=NUGGET)

    def test_fit_mle_rejects_bad_inputs(self, small):
        kern, x, z = small
        bad = x.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="'x'"):
            fit_mle(kern, bad, z, tile_size=16, variant="dense-fp64",
                    theta0=THETA, max_iter=2, nugget=NUGGET)

    def test_model_surface_rejects_bad_inputs(self, small):
        kern, x, z = small
        model = ExaGeoStatModel(kernel="matern", variant="dense-fp64",
                                tile_size=16, nugget=NUGGET)
        bad_z = z.copy()
        bad_z[1] = np.inf
        with pytest.raises(ValueError, match="'z'"):
            model.fit(x, bad_z, theta0=THETA, max_iter=2)
        model.set_params(THETA, x, z)
        x_new = np.full((4, 2), 0.5)
        bad_new = x_new.copy()
        bad_new[3, 0] = np.nan
        with pytest.raises(ValueError, match="'x_new'"):
            model.predict(bad_new)
        with pytest.raises(ValueError, match="'z_test'"):
            model.score(x_new, np.array([0.0, np.nan, 0.0, 0.0]))

    def test_prediction_engine_rejects_bad_test_points(self, small):
        kern, x, z = small
        factor = loglikelihood(kern, THETA, x, z, tile_size=16,
                               variant="dense-fp64", nugget=NUGGET).factor
        engine = PredictionEngine(kern, THETA, x, z, factor, batch=8)
        with pytest.raises(ValueError, match="'x_test'"):
            engine.predict(np.array([[0.1, np.nan]]))


# ----------------------------------------------------------------------
# Serving path: LRU under threads, batch retry, breaker, deadlines
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serving_state(pinned):
    kern, x, z, x_test = pinned
    factor = loglikelihood(kern, THETA, x, z, tile_size=30,
                           variant="mp-dense-tlr", nugget=NUGGET).factor
    return kern, x, z, x_test, factor


class TestServingResilience:
    def test_concurrent_predicts_are_consistent(self, serving_state):
        """Satellite 2: hammer one engine from many threads with a
        cache small enough to churn; results must match the serial
        reference and the stats ledger must stay coherent."""
        kern, x, z, x_test, factor = serving_state
        engine = PredictionEngine(
            kern, THETA, x, z, factor, batch=8, workers=2,
            cross_cache_bytes=24_000,  # ~1-2 entries: forces eviction
        )
        ref = engine.predict(x_test, return_uncertainty=True)
        results, errors = [None] * 8, []

        def hammer(i):
            try:
                results[i] = engine.predict(x_test, return_uncertainty=True)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for res in results:
            np.testing.assert_array_equal(res.mean, ref.mean)
            np.testing.assert_array_equal(res.variance, ref.variance)
        stats = engine.stats()
        assert stats.predict_calls == 9
        assert stats.cross_hits + stats.cross_misses == stats.batches
        assert 0 <= stats.cross_cache_bytes <= 24_000
        assert stats.weight_solves == 1  # amortization survived the race

    def test_batch_retry_absorbs_chaos_bit_identically(self, serving_state):
        kern, x, z, x_test, factor = serving_state
        plain = PredictionEngine(kern, THETA, x, z, factor, batch=8)
        ref = plain.predict(x_test, return_uncertainty=True)
        chaotic = PredictionEngine(
            kern, THETA, x, z, factor, batch=8,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=5, base_delay_s=0.0,
                                  max_delay_s=0.0),
                chaos=ChaosConfig(seed=5, batch_fail_rate=0.5),
            ),
        )
        got = chaotic.predict(x_test, return_uncertainty=True)
        np.testing.assert_array_equal(got.mean, ref.mean)
        np.testing.assert_array_equal(got.variance, ref.variance)
        stats = chaotic.stats()
        assert stats.batch_retries > 0 and stats.failed_calls == 0
        health = chaotic.health()
        assert health.retries == stats.batch_retries and health.ok

    def test_unretried_chaos_surfaces_and_counts(self, serving_state):
        kern, x, z, x_test, factor = serving_state
        engine = PredictionEngine(
            kern, THETA, x, z, factor, batch=8,
            resilience=ResilienceConfig(
                chaos=ChaosConfig(seed=5, batch_fail_rate=1.0),
            ),
        )
        with pytest.raises(ChaosError):
            engine.predict(x_test)
        stats = engine.stats()
        assert stats.failed_calls == 1 and stats.predict_calls == 0

    def test_circuit_breaker_trips_clears_cache_and_recovers(
        self, serving_state
    ):
        kern, x, z, x_test, factor = serving_state
        engine = PredictionEngine(kern, THETA, x, z, factor, batch=8)
        engine.predict(x_test, return_uncertainty=True)  # warm the LRU
        assert engine.stats().cross_cache_bytes > 0
        for _ in range(3):
            with pytest.raises(DeadlineExceededError):
                engine.predict(x_test, deadline_s=0.0)
        health = engine.health()
        assert health.breaker_open and health.breaker_trips == 1
        assert health.consecutive_failures == 3
        # The trip's safe rebuild dropped every cached cross panel.
        assert engine.stats().cross_cache_bytes == 0
        # Half-open: the next clean call closes the breaker.
        engine.predict(x_test)
        health = engine.health()
        assert health.ok and not health.breaker_open
        assert health.breaker_trips == 1
        assert health.failures == 3 and health.calls == 5

    def test_deadline_cancels_without_leaking_threads(self, serving_state):
        """Satellite 4c: an expired deadline raises promptly, drains
        the pool, and discards any partial arrays."""
        kern, x, z, x_test, factor = serving_state
        engine = PredictionEngine(kern, THETA, x, z, factor,
                                  batch=4, workers=4)
        before = threading.active_count()
        t0 = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            engine.predict(x_test, return_uncertainty=True, deadline_s=0.0)
        assert time.monotonic() - t0 < 5.0
        limit = time.monotonic() + 5.0
        while threading.active_count() > before:
            assert time.monotonic() < limit, "predict pool leaked threads"
            time.sleep(0.01)
        assert engine.stats().predict_calls == 0

    def test_generous_deadline_changes_nothing(self, serving_state):
        kern, x, z, x_test, factor = serving_state
        engine = PredictionEngine(kern, THETA, x, z, factor, batch=8)
        ref = engine.predict(x_test, return_uncertainty=True)
        got = engine.predict(x_test, return_uncertainty=True,
                             deadline_s=300.0)
        np.testing.assert_array_equal(got.mean, ref.mean)
        np.testing.assert_array_equal(got.variance, ref.variance)


# ----------------------------------------------------------------------
# Pinned bit-identity: resilience off == the pre-PR results
# ----------------------------------------------------------------------
#: Frozen outputs of the pinned dataset (rng(42), 120 points, tile 30).
PINNED_LOGLIK_TLR = -125.0185750632407
PINNED_LOGLIK_DENSE = -125.01857507037556
PINNED_FIT_THETA = (0.9698549256785878, 0.17606490896788304,
                    0.4232580533692424)
PINNED_FIT_LOGLIK = -121.32082013758716
PINNED_FIT_NFEV = 22
PINNED_MEAN_SUM = -12.108876465532902
PINNED_VARIANCE_SUM = 11.35360336170925


class TestPinnedBitIdentity:
    def test_loglikelihood_pinned(self, pinned):
        kern, x, z, _ = pinned
        tlr = loglikelihood(kern, THETA, x, z, tile_size=30,
                            variant="mp-dense-tlr", nugget=NUGGET)
        dense = loglikelihood(kern, THETA, x, z, tile_size=30,
                              variant="dense-fp64", nugget=NUGGET)
        assert tlr.value == PINNED_LOGLIK_TLR
        assert dense.value == PINNED_LOGLIK_DENSE

    def test_inert_hooks_do_not_move_a_bit(self, pinned):
        kern, x, z, _ = pinned
        for cfg in (
            ResilienceConfig(),
            ResilienceConfig(chaos=ChaosConfig()),
            ResilienceConfig(degradation=DegradationPolicy()),
        ):
            got = loglikelihood(kern, THETA, x, z, tile_size=30,
                                variant="mp-dense-tlr", nugget=NUGGET,
                                resilience=cfg)
            assert got.value == PINNED_LOGLIK_TLR

    def test_fit_pinned_with_and_without_inert_hooks(self, pinned):
        kern, x, z, _ = pinned
        for resilience in (None, ResilienceConfig()):
            fit = fit_mle(kern, x, z, tile_size=30, variant="mp-dense-tlr",
                          theta0=THETA, max_iter=10, nugget=NUGGET,
                          resilience=resilience)
            assert tuple(fit.theta) == PINNED_FIT_THETA
            assert fit.loglik == PINNED_FIT_LOGLIK
            assert fit.nfev == PINNED_FIT_NFEV
            assert fit.degradation is None

    def test_predict_pinned_with_and_without_inert_hooks(
        self, serving_state
    ):
        kern, x, z, x_test, factor = serving_state
        # Dataset guard: the pinned constants are meaningless if the
        # generator recipe drifts.
        assert float(x_test.sum()) == 20.796803192033227  # lint: ignore[LINT002]
        for resilience in (None, ResilienceConfig()):
            engine = PredictionEngine(kern, THETA, x, z, factor, batch=16,
                                      resilience=resilience)
            pred = engine.predict(x_test, return_uncertainty=True)
            assert float(pred.mean.sum()) == PINNED_MEAN_SUM
            assert float(pred.variance.sum()) == PINNED_VARIANCE_SUM
