"""Batched kernel execution layer: stacked kernels, scratch pool,
homogeneous-group dispatch, and batched covariance generation.

The load-bearing property is the bit-identity contract: for dense
groups every batched call must reproduce the per-tile kernels exactly,
so routing a factorization (or a whole fit) through the batched layer
changes no result bits.
"""

import numpy as np
import pytest

from repro.exceptions import NotPositiveDefiniteError, ShapeError
from repro.kernels import (
    ExponentialKernel,
    GaussianKernel,
    MaternKernel,
    PoweredExponentialKernel,
)
from repro.ordering import order_points
from repro.runtime import execute_cholesky_batched
from repro.tile import (
    DenseTile,
    Precision,
    ScratchPool,
    batched_gemm,
    batched_potrf,
    batched_syrk,
    batched_trsm,
    build_planned_covariance,
    tile_cholesky,
)
from repro.tile import kernels as K
from tests.conftest import random_spd_tilematrix

VARIANTS = ("dense-fp64", "mp-dense", "mp-dense-tlr", "mp-dense-tlr-recover")


def _dense_tiles(count, shape, seed, precision=Precision.FP64):
    gen = np.random.default_rng(seed)
    return [
        DenseTile(gen.standard_normal(shape), precision)
        for _ in range(count)
    ]


def _spd_tiles(count, n, seed, precision=Precision.FP64):
    gen = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        a = gen.standard_normal((n, n))
        out.append(DenseTile(a @ a.T / n + np.eye(n), precision))
    return out


class TestScratchPool:
    def test_reuse_after_return(self):
        pool = ScratchPool()
        with pool.stack((4, 8, 8), np.float64) as buf:
            assert buf.shape == (4, 8, 8)
        assert pool.allocations == 1
        with pool.stack((2, 8, 8), np.float64):
            pass
        assert pool.reuses == 1
        assert pool.allocations == 1

    def test_per_dtype_free_lists(self):
        pool = ScratchPool()
        with pool.stack((8, 8), np.float64):
            pass
        with pool.stack((8, 8), np.float32):
            pass
        assert pool.allocations == 2
        assert pool.nbytes == 8 * 8 * 8 + 8 * 8 * 4

    def test_growth_allocates_once(self):
        pool = ScratchPool()
        with pool.stack((2, 4, 4), np.float64):
            pass
        # Larger request: the parked buffer is too small.
        with pool.stack((16, 4, 4), np.float64):
            pass
        assert pool.allocations == 2
        # Smaller request now reuses the *smallest* sufficient buffer.
        with pool.stack((1, 4, 4), np.float64):
            pass
        assert pool.reuses == 1

    def test_concurrent_borrows_are_distinct(self):
        pool = ScratchPool()
        with pool.stack((4, 4), np.float64) as a:
            with pool.stack((4, 4), np.float64) as b:
                assert a.base is not b.base
        assert pool.allocations == 2

    def test_clear(self):
        pool = ScratchPool()
        with pool.stack((4, 4), np.float64):
            pass
        assert pool.nbytes > 0
        pool.clear()
        assert pool.nbytes == 0


class TestBatchedKernelsEquivalence:
    @pytest.mark.parametrize(
        "precision", [Precision.FP64, Precision.FP32, Precision.FP16]
    )
    def test_gemm_matches_per_tile(self, precision):
        a = _dense_tiles(5, (8, 6), 1, precision)
        b = _dense_tiles(5, (7, 6), 2, precision)
        c = _dense_tiles(5, (8, 7), 3, precision)
        ref = [K.gemm(ai, bi, ci) for ai, bi, ci in zip(a, b, c)]
        got = batched_gemm(a, b, c)
        for r, g in zip(ref, got):
            assert g.precision is r.precision
            np.testing.assert_array_equal(g.data, r.data)

    @pytest.mark.parametrize(
        "precision", [Precision.FP64, Precision.FP32, Precision.FP16]
    )
    def test_syrk_matches_per_tile(self, precision):
        a = _dense_tiles(4, (8, 6), 4, precision)
        c = _spd_tiles(4, 8, 5, precision)
        ref = [K.syrk(ai, ci) for ai, ci in zip(a, c)]
        got = batched_syrk(a, c)
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(g.data, r.data)

    @pytest.mark.parametrize(
        "precision", [Precision.FP64, Precision.FP32, Precision.FP16]
    )
    def test_trsm_matches_per_tile(self, precision):
        low = K.potrf(_spd_tiles(1, 6, 6)[0])
        tiles = _dense_tiles(5, (8, 6), 7, precision)
        ref = [K.trsm(low, t) for t in tiles]
        got = batched_trsm(low, tiles)
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(g.data, r.data)
            assert g.data.flags.c_contiguous

    @pytest.mark.parametrize("precision", [Precision.FP64, Precision.FP32])
    def test_potrf_matches_per_tile(self, precision):
        tiles = _spd_tiles(4, 8, 8, precision)
        ref = [K.potrf(t) for t in tiles]
        got = batched_potrf(tiles, [(i, i) for i in range(4)])
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(g.data, r.data)

    def test_potrf_indefinite_names_failing_tile(self):
        tiles = _spd_tiles(3, 4, 9)
        tiles[1] = DenseTile(np.diag([1.0, -2.0, 1.0, 1.0]))
        with pytest.raises(NotPositiveDefiniteError) as exc:
            batched_potrf(tiles, [(0, 0), (5, 5), (7, 7)])
        assert "(5, 5)" in str(exc.value)

    def test_heterogeneous_group_rejected(self):
        tiles = _dense_tiles(2, (4, 4), 10) + _dense_tiles(1, (4, 4), 11, Precision.FP32)
        with pytest.raises(ShapeError):
            batched_potrf(tiles, [(0, 0), (1, 1), (2, 2)])
        with pytest.raises(ShapeError):
            batched_gemm([], [], [])

    def test_hgemm_group_rejected(self):
        a = _dense_tiles(2, (4, 4), 12, Precision.FP16)
        c = _dense_tiles(2, (4, 4), 13, Precision.FP16)
        with pytest.raises(ShapeError):
            batched_gemm(a, a, c, fp16_accumulate_fp32=False)


class TestBatchedDispatcher:
    @pytest.mark.parametrize("nt", [4, 8])
    def test_dense_fp64_bit_identical(self, nt):
        tm = random_spd_tilematrix(nt * 16, 16, seed=nt)
        ref, ref_stats = tile_cholesky(tm.copy())
        got, report = execute_cholesky_batched(tm.copy())
        np.testing.assert_array_equal(
            ref.to_dense(lower_only=True), got.to_dense(lower_only=True)
        )
        assert ref_stats.kernel_counts == report.stats.kernel_counts
        assert isinstance(report.stats.kernel_counts, dict)
        assert report.batched_tasks + report.fallback_tasks == report.tasks

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("nt", [4, 8])
    def test_planned_variants_bit_identical(self, variant, nt, matern, theta_matern):
        """All four shipped variants factor bit-identically through the
        batched dispatcher (MP/TLR included: batching regroups the same
        per-tile operations)."""
        from repro.core.variants import get_variant

        cfg = get_variant(variant)
        gen = np.random.default_rng(100 + nt)
        x = gen.uniform(size=(nt * 24, 2))
        x = x[order_points(x, "morton")]
        mat, rep = build_planned_covariance(
            matern, theta_matern, x, 24, nugget=1e-8, **cfg.assembly_kwargs()
        )
        ref, _ = tile_cholesky(mat.copy(), tile_tol=rep.tile_tol)
        got, _ = execute_cholesky_batched(mat.copy(), tile_tol=rep.tile_tol)
        np.testing.assert_array_equal(
            ref.to_dense(lower_only=True), got.to_dense(lower_only=True)
        )

    def test_workers_deterministic(self):
        """Multi-worker dispatch (clamp off: real threads even on
        few-core hosts) reproduces the single-worker result exactly."""
        tm = random_spd_tilematrix(160, 16, seed=21)
        one, _ = execute_cholesky_batched(tm.copy(), workers=1)
        many, report = execute_cholesky_batched(
            tm.copy(), workers=4, clamp=False
        )
        np.testing.assert_array_equal(
            one.to_dense(lower_only=True), many.to_dense(lower_only=True)
        )
        assert report.workers == 4

    def test_min_batch_one_forces_stacked_singletons(self):
        tm = random_spd_tilematrix(64, 16, seed=22)
        ref, _ = tile_cholesky(tm.copy())
        got, report = execute_cholesky_batched(tm.copy(), min_batch=1)
        np.testing.assert_array_equal(
            ref.to_dense(lower_only=True), got.to_dense(lower_only=True)
        )
        assert report.fallback_tasks == 0

    def test_prebuilt_dag_path(self):
        from repro.runtime import build_dag, cholesky_tasks

        tm = random_spd_tilematrix(64, 16, seed=23)
        tasks = list(cholesky_tasks(tm.nt))
        dag = build_dag(tasks)
        ref, _ = tile_cholesky(tm.copy())
        got, _ = execute_cholesky_batched(tm.copy(), tasks=tasks, dag=dag)
        np.testing.assert_array_equal(
            ref.to_dense(lower_only=True), got.to_dense(lower_only=True)
        )

    def test_scratch_pool_reused_across_waves(self):
        tm = random_spd_tilematrix(160, 16, seed=24)
        pool = ScratchPool()
        execute_cholesky_batched(tm, pool=pool)
        assert pool.reuses > pool.allocations

    def test_indefinite_raises_npd(self):
        from repro.tile import TileMatrix

        a = np.diag([1.0, -4.0, 1.0, 1.0])
        tm = TileMatrix.from_dense(a, 2)
        with pytest.raises(NotPositiveDefiniteError):
            execute_cholesky_batched(tm)

    def test_zero_workers_rejected(self):
        from repro.exceptions import SchedulingError

        tm = random_spd_tilematrix(8, 4, seed=25)
        with pytest.raises(SchedulingError):
            execute_cholesky_batched(tm, workers=0)


class TestBatchedLikelihood:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_loglikelihood_batch_equals_per_tile(self, variant, matern,
                                                 theta_matern, locations_200):
        from repro.core.likelihood import loglikelihood

        gen = np.random.default_rng(30)
        z = gen.standard_normal(200)
        ref = loglikelihood(
            matern, theta_matern, locations_200, z, tile_size=40,
            variant=variant, nugget=1e-8,
        )
        got = loglikelihood(
            matern, theta_matern, locations_200, z, tile_size=40,
            variant=variant, nugget=1e-8, batch=True,
        )
        assert got.value == ref.value
        assert got.logdet == ref.logdet
        assert got.quadratic == ref.quadratic

    def test_engine_batch_knob(self, matern, theta_matern, locations_200):
        from repro.core.engine import EvaluationEngine

        gen = np.random.default_rng(31)
        z = gen.standard_normal(200)
        ref = EvaluationEngine(
            matern, locations_200, z, tile_size=40, variant="mp-dense-tlr",
            nugget=1e-8,
        ).evaluate(theta_matern)
        got = EvaluationEngine(
            matern, locations_200, z, tile_size=40, variant="mp-dense-tlr",
            nugget=1e-8, batch=True,
        ).evaluate(theta_matern)
        assert got.value == ref.value

    def test_model_batch_knob(self, locations_200):
        from repro import ExaGeoStatModel

        gen = np.random.default_rng(33)
        z = gen.standard_normal(200)
        kwargs = dict(
            kernel="matern", variant="mp-dense-tlr", tile_size=40,
            nugget=1e-8,
        )
        fit_kwargs = dict(theta0=np.array([1.0, 0.1, 0.5]), max_iter=4)
        ref = ExaGeoStatModel(**kwargs).fit(locations_200, z, **fit_kwargs)
        got = ExaGeoStatModel(batch=True, **kwargs).fit(
            locations_200, z, **fit_kwargs
        )
        assert got.loglik_ == ref.loglik_
        np.testing.assert_array_equal(got.theta_, ref.theta_)

    def test_deadline_falls_back_to_heap_executor(self, matern, theta_matern,
                                                  locations_200):
        """The batched dispatcher supports no deadlines; configuring one
        routes the factorization through the resilient executor."""
        from repro.core.likelihood import loglikelihood
        from repro.resilience import Deadline

        gen = np.random.default_rng(32)
        z = gen.standard_normal(200)
        got = loglikelihood(
            matern, theta_matern, locations_200, z, tile_size=40,
            variant="dense-fp64", nugget=1e-8, batch=True,
            deadline=Deadline.after(60.0),
        )
        ref = loglikelihood(
            matern, theta_matern, locations_200, z, tile_size=40,
            variant="dense-fp64", nugget=1e-8,
        )
        assert got.value == ref.value


class TestBatchedGeneration:
    KERNELS = [
        (MaternKernel(), np.array([1.0, 0.1, 0.8])),  # generic-nu kve path
        (MaternKernel(), np.array([1.0, 0.1, 0.5])),  # closed form
        (ExponentialKernel(), np.array([1.0, 0.1])),
        (GaussianKernel(), np.array([1.0, 0.1])),
        (PoweredExponentialKernel(), np.array([1.0, 0.1, 1.5])),  # base fallback
    ]

    @pytest.mark.parametrize("kernel,theta", KERNELS)
    def test_from_geometry_batch_bit_identical(self, kernel, theta):
        gen = np.random.default_rng(40)
        x = gen.uniform(size=(90, 2))
        geoms = [
            kernel.prepare_geometry(x[:30]),  # same-set (diagonal form)
            kernel.prepare_geometry(x[:30], x[30:60]),
            kernel.prepare_geometry(x[30:60], x[60:]),
        ]
        ref = [kernel.from_geometry(theta, g) for g in geoms]
        got = kernel.from_geometry_batch(theta, geoms)
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(g, r)

    def test_from_geometry_batch_spacetime(self, gneiting):
        gen = np.random.default_rng(41)
        x = np.column_stack([
            gen.uniform(size=(60, 2)), np.repeat(np.arange(6.0), 10)
        ])
        theta = np.array([1.0, 0.1, 0.5, 1.0, 0.5, 0.5])
        geoms = [
            gneiting.prepare_geometry(x[:20]),
            gneiting.prepare_geometry(x[:20], x[20:]),
        ]
        ref = [gneiting.from_geometry(theta, g) for g in geoms]
        got = gneiting.from_geometry_batch(theta, geoms)
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(g, r)

    def test_concat_split_roundtrip(self):
        from repro.kernels.base import concat_flat, split_flat

        gen = np.random.default_rng(42)
        arrays = [gen.standard_normal(s) for s in [(3, 4), (2, 2), (5,)]]
        flat, shapes = concat_flat(arrays)
        back = split_flat(flat, shapes)
        for a, b in zip(arrays, back):
            np.testing.assert_array_equal(a, b)
        flat_empty, shapes_empty = concat_flat([])
        assert flat_empty.size == 0 and shapes_empty == []

    def test_assembly_batch_bit_identical(self, matern, theta_matern,
                                          locations_200):
        ref, ref_rep = build_planned_covariance(
            matern, theta_matern, locations_200, 40, nugget=1e-8,
            use_mp=True, use_tlr=True,
        )
        got, got_rep = build_planned_covariance(
            matern, theta_matern, locations_200, 40, nugget=1e-8,
            use_mp=True, use_tlr=True, batch=True,
        )
        np.testing.assert_array_equal(
            ref.to_dense(lower_only=True), got.to_dense(lower_only=True)
        )
        assert got_rep.global_norm == ref_rep.global_norm

    def test_generate_blocks_need_norms_off(self, matern, theta_matern,
                                            locations_200):
        from repro.tile.assembly import _generate_blocks
        from repro.tile.layout import TileLayout

        layout = TileLayout(200, 40)
        blocks, norms, total = _generate_blocks(
            matern, theta_matern, locations_200, layout, 1e-8,
            need_norms=False,
        )
        assert norms == {} and total == 0.0
        full, full_norms, full_total = _generate_blocks(
            matern, theta_matern, locations_200, layout, 1e-8,
        )
        assert full_total > 0.0 and len(full_norms) == len(full)
        for key in full:
            np.testing.assert_array_equal(blocks[key], full[key])


class TestCholeskyStatsCounter:
    def test_count_batch_merges_into_plain_dict(self):
        from collections import Counter

        from repro.tile import CholeskyStats

        stats = CholeskyStats()
        stats.count("potrf")
        stats.count_batch(Counter({"gemm": 3, "trsm": 2}))
        stats.count_batch(["gemm", "syrk"])
        assert type(stats.kernel_counts) is dict
        assert stats.kernel_counts == {
            "potrf": 1, "gemm": 4, "trsm": 2, "syrk": 1
        }
