"""Tests for the static lock-discipline analyzer (repro.analysis.lockcheck)."""

import json
import textwrap

from repro.__main__ import main as cli_main
from repro.analysis import check_lock_discipline, check_lock_paths, check_lock_source


def rules_of(source):
    return [d.rule for d in check_lock_source(textwrap.dedent(source))]


CLEAN_CLASS = """
    import threading

    class Clean:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def bump(self):
            with self._lock:
                self.count += 1

        def value(self):
            with self._lock:
                return self.count
"""


class TestLock001GuardedMutation:
    def test_unlocked_write_of_guarded_attr_flagged(self):
        src = """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

                def reset(self):
                    self.count = 0
        """
        assert "LOCK001" in rules_of(src)

    def test_consistently_locked_class_clean(self):
        assert rules_of(CLEAN_CLASS) == []

    def test_init_writes_exempt(self):
        # __init__ runs before the object is shared; its bare writes
        # must not count as violations.
        rules = rules_of(CLEAN_CLASS)
        assert "LOCK001" not in rules


class TestLock002ThreadSpawnNoLock:
    def test_pool_spawner_without_lock_flagged(self):
        src = """
            from concurrent.futures import ThreadPoolExecutor

            class Racer:
                def __init__(self):
                    self.results = []

                def run(self):
                    def task(i):
                        self.results.append(i)
                    with ThreadPoolExecutor(max_workers=4) as pool:
                        for i in range(8):
                            pool.submit(task, i)
        """
        assert "LOCK002" in rules_of(src)

    def test_pool_spawner_with_lock_clean(self):
        src = """
            import threading
            from concurrent.futures import ThreadPoolExecutor

            class Safe:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.results = []

                def run(self):
                    def task(i):
                        with self._lock:
                            self.results.append(i)
                    with ThreadPoolExecutor(max_workers=4) as pool:
                        for i in range(8):
                            pool.submit(task, i)
        """
        assert "LOCK002" not in rules_of(src)


LOCK_ORDER_CYCLE = """
    import threading

    class Left:
        def __init__(self, right):
            self._lock = threading.Lock()
            self.right = right

        def poke(self):
            with self._lock:
                self.right.touch()

        def touch(self):
            with self._lock:
                pass

    class Right:
        def __init__(self, left):
            self._lock = threading.Lock()
            self.left = left

        def poke(self):
            with self._lock:
                self.left.touch()

        def touch(self):
            with self._lock:
                pass
"""


class TestLock003LockOrderCycle:
    def test_two_class_cycle_flagged(self):
        # A.poke holds A._lock and enters B._lock; B.poke holds
        # B._lock and enters A._lock — opposite orders close a cycle.
        src = """
            import threading

            class A:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.b = B()

                def poke(self):
                    with self._lock:
                        self.b.touch()

                def touch(self):
                    with self._lock:
                        pass

            class B:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.a = A()

                def touch(self):
                    with self._lock:
                        pass

                def poke(self):
                    with self._lock:
                        self.a.touch()
        """
        assert "LOCK003" in rules_of(src)

    def test_nested_own_locks_one_order_clean(self):
        src = """
            import threading

            class TwoLocks:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def both(self):
                    with self._a:
                        with self._b:
                            pass

                def also_both(self):
                    with self._a:
                        with self._b:
                            pass
        """
        assert "LOCK003" not in rules_of(src)

    def test_nested_own_locks_opposite_orders_flagged(self):
        src = """
            import threading

            class Inverted:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
        """
        assert "LOCK003" in rules_of(src)


class TestLock004Reentry:
    def test_lexically_nested_reacquire_flagged(self):
        src = """
            import threading

            class Reenter:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
        """
        assert rules_of(src) == ["LOCK004"]

    def test_self_call_reacquire_flagged(self):
        src = """
            import threading

            class Reenter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.x = 0

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        self.x += 1
        """
        assert "LOCK004" in rules_of(src)

    def test_rlock_reentry_clean(self):
        src = """
            import threading

            class Reenter:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
        """
        assert rules_of(src) == []


class TestLock005CheckThenAct:
    def test_split_check_then_act_flagged(self):
        src = """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.data = {}

                def get_or_build(self, key):
                    with self._lock:
                        hit = self.data.get(key)
                        if hit is not None:
                            return hit
                    built = object()
                    with self._lock:
                        self.data[key] = built
                    return built
        """
        rep = check_lock_source(textwrap.dedent(src))
        assert [d.rule for d in rep.warnings] == ["LOCK005"]

    def test_single_region_clean(self):
        src = """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.data = {}

                def get_or_build(self, key):
                    with self._lock:
                        hit = self.data.get(key)
                        if hit is None:
                            hit = object()
                            self.data[key] = hit
                        return hit
        """
        assert rules_of(src) == []

    def test_suppression_comment_silences(self):
        src = """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.data = {}

                def get_or_build(self, key):
                    with self._lock:
                        hit = self.data.get(key)
                        if hit is not None:
                            return hit
                    built = object()
                    with self._lock:
                        self.data[key] = built  # lockcheck: ignore[LOCK005]
                    return built
        """
        assert rules_of(src) == []

    def test_suppression_of_other_rule_keeps_finding(self):
        src = """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.data = {}

                def get_or_build(self, key):
                    with self._lock:
                        hit = self.data.get(key)
                        if hit is not None:
                            return hit
                    built = object()
                    with self._lock:
                        self.data[key] = built  # lockcheck: ignore[LOCK001]
                    return built
        """
        assert "LOCK005" in rules_of(src)


class TestLock006ConditionWait:
    def test_bare_wait_flagged(self):
        src = """
            import threading

            class Waiter:
                def __init__(self):
                    self._cond = threading.Condition()

                def block(self):
                    with self._cond:
                        self._cond.wait()
        """
        assert "LOCK006" in rules_of(src)

    def test_predicate_loop_clean(self):
        src = """
            import threading

            class Waiter:
                def __init__(self):
                    self._cond = threading.Condition()
                    self.ready = False

                def block(self):
                    with self._cond:
                        while not self.ready:
                            self._cond.wait()
        """
        assert "LOCK006" not in rules_of(src)


class TestLock007RawAcquire:
    def test_acquire_without_finally_flagged(self):
        src = """
            import threading

            class Leaky:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.x = 0

                def work(self):
                    self._lock.acquire()
                    self.x += 1
                    self._lock.release()
        """
        assert "LOCK007" in rules_of(src)

    def test_acquire_with_finally_release_clean(self):
        src = """
            import threading

            class Careful:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.x = 0

                def work(self):
                    self._lock.acquire()
                    try:
                        self.x += 1
                    finally:
                        self._lock.release()
        """
        assert "LOCK007" not in rules_of(src)


class TestLock008LockRebinding:
    def test_rebind_outside_init_flagged(self):
        src = """
            import threading

            class Rebinder:
                def __init__(self):
                    self._lock = threading.Lock()

                def reset(self):
                    self._lock = threading.Lock()
        """
        assert "LOCK008" in rules_of(src)

    def test_init_binding_clean(self):
        assert "LOCK008" not in rules_of(CLEAN_CLASS)


class TestRealTree:
    def test_shipped_package_has_no_errors(self):
        rep = check_lock_discipline()
        assert rep.errors == []

    def test_shipped_package_has_no_warnings(self):
        # Known benign two-phase fills carry documented suppressions,
        # so the default run is completely quiet.
        rep = check_lock_discipline()
        assert rep.warnings == []


class TestCrossFileGraph:
    def test_cycle_split_across_files_detected(self, tmp_path):
        (tmp_path / "left.py").write_text(textwrap.dedent("""
            import threading

            class Left:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.right = Right()

                def poke(self):
                    with self._lock:
                        self.right.touch()
        """))
        (tmp_path / "right.py").write_text(textwrap.dedent("""
            import threading

            class Right:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.left = Left()

                def touch(self):
                    with self._lock:
                        pass

                def poke(self):
                    with self._lock:
                        self.left.poke()
        """))
        rep = check_lock_paths([tmp_path])
        assert "LOCK003" in [d.rule for d in rep.errors]


class TestCli:
    def _cycle_file(self, tmp_path):
        path = tmp_path / "cycle.py"
        path.write_text(textwrap.dedent("""
            import threading

            class Inverted:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
        """))
        return path

    def test_cycle_reported_human(self, tmp_path, capsys):
        path = self._cycle_file(tmp_path)
        code = cli_main(["analyze", "--concurrency", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "LOCK003" in out
        assert "lock-order cycle" in out

    def test_cycle_reported_json(self, tmp_path, capsys):
        path = self._cycle_file(tmp_path)
        code = cli_main(["analyze", "--concurrency", str(path), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False
        assert "LOCK003" in {f["rule"] for f in payload["findings"]}

    def test_default_target_clean(self, capsys):
        code = cli_main(["analyze", "--concurrency"])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_rules_catalog_lists_lock_rules(self, capsys):
        code = cli_main(["analyze", "--rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule in ("LOCK001", "LOCK003", "LOCK008", "RACE001", "RACE005"):
            assert rule in out
