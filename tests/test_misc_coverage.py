"""Coverage of small corners: config, exceptions, profile helpers,
the Haswell machine path, and variant assembly wiring."""

import numpy as np
import pytest

from repro import config
from repro.exceptions import (
    CompressionError,
    ConfigurationError,
    NotPositiveDefiniteError,
    OptimizationError,
    ParameterError,
    ReproError,
    SchedulingError,
    ShapeError,
)
from repro.perfmodel import (
    CLASSES,
    HASWELL_NODE,
    PlanProfile,
    estimate_cholesky,
)
from repro.tile import Precision


class TestConfigDefaults:
    def test_paper_values(self):
        assert config.DEFAULT_TLR_TOLERANCE == pytest.approx(1e-8)
        assert config.DEFAULT_BAND_FLUCTUATION == 1.0
        assert 0 < config.DEFAULT_MAX_RANK_FRACTION <= 1.0

    def test_tile_size_positive(self):
        assert config.DEFAULT_TILE_SIZE > 0


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ParameterError, ShapeError, NotPositiveDefiniteError,
            CompressionError, SchedulingError, OptimizationError,
            ConfigurationError,
        ):
            assert issubclass(exc, ReproError)

    def test_value_errors_catchable_as_valueerror(self):
        assert issubclass(ParameterError, ValueError)
        assert issubclass(ShapeError, ValueError)

    def test_npd_carries_tile_index(self):
        exc = NotPositiveDefiniteError("boom", (2, 2))
        assert exc.tile_index == (2, 2)

    def test_npd_index_optional(self):
        assert NotPositiveDefiniteError("boom").tile_index is None


class TestProfileHelpers:
    def test_classes_cover_structures_and_precisions(self):
        assert set(CLASSES) == {
            "dense/FP64", "dense/FP32", "dense/FP16", "lr/FP64", "lr/FP32",
        }

    def test_class_precision_lookup(self):
        assert PlanProfile.class_precision("dense/FP16") is Precision.FP16
        assert PlanProfile.class_precision("lr/FP32") is Precision.FP32

    def test_class_is_lr(self):
        assert PlanProfile.class_is_lr("lr/FP64")
        assert not PlanProfile.class_is_lr("dense/FP64")

    def test_class_fraction_weighting(self):
        """Offsets are weighted by tile multiplicity (nt - d)."""
        fr = np.zeros((3, len(CLASSES)))
        fr[:, CLASSES.index("dense/FP64")] = 1.0
        fr[2, CLASSES.index("dense/FP64")] = 0.0
        fr[2, CLASSES.index("dense/FP16")] = 1.0
        prof = PlanProfile(fractions=fr, mean_rank=np.zeros(3), nt=3)
        # Offsets have multiplicities 3, 2, 1 -> FP16 fraction = 1/6.
        assert prof.class_fraction("dense/FP16") == pytest.approx(1 / 6)


class TestHaswellPath:
    def test_estimator_runs_on_shaheen_spec(self):
        est = estimate_cholesky(
            PlanProfile.dense_fp64(), 500_000, 1000, HASWELL_NODE, nodes=512
        )
        assert est.time_s > 0
        assert est.flops == pytest.approx(500_000**3 / 3, rel=0.05)

    def test_fugaku_faster_than_shaheen(self):
        from repro.perfmodel import A64FX

        n = 500_000
        t_fugaku = estimate_cholesky(
            PlanProfile.dense_fp64(), n, 1000, A64FX, nodes=512
        ).time_s
        t_shaheen = estimate_cholesky(
            PlanProfile.dense_fp64(), n, 1000, HASWELL_NODE, nodes=512
        ).time_s
        assert t_fugaku < t_shaheen


class TestVariantAssemblyWiring:
    def test_band_variant_reaches_assembly(self, matern, theta_matern,
                                           locations_200):
        """A custom band-rule variant flows through the likelihood."""
        from repro.core import VariantConfig, loglikelihood

        cfg = VariantConfig(
            name="band-test", use_mp=True, mp_mode="band",
            mp_fp64_band=2, mp_fp32_band=3,
        )
        res = loglikelihood(
            matern, theta_matern, locations_200, np.zeros(200) + 0.1,
            tile_size=40, variant=cfg, nugget=1e-8,
        )
        counts = res.report.plan.counts()
        assert "dense/FP16" in counts

    def test_hgemm_variant_runs(self, matern, theta_matern, locations_200):
        from repro.core import VariantConfig, loglikelihood

        cfg = VariantConfig(
            name="hgemm-test", use_mp=True,
            fp16_accumulate_fp32=False, shgemm_mode="hgemm",
        )
        theta = np.array([1.0, 0.03, 0.5])  # weak: FP16 tiles exist
        res = loglikelihood(
            matern, theta, locations_200, np.zeros(200) + 0.1,
            tile_size=40, variant=cfg, nugget=1e-8,
        )
        assert np.isfinite(res.value)

    def test_perfmodel_structure_mode_variant(self, matern, theta_matern,
                                              locations_200):
        """structure_mode='perfmodel' at laptop tiles densifies all."""
        from repro.core import VariantConfig, loglikelihood

        cfg = VariantConfig(
            name="pm-test", use_tlr=True, structure_mode="perfmodel",
        )
        res = loglikelihood(
            matern, theta_matern, locations_200, np.zeros(200) + 0.1,
            tile_size=40, variant=cfg, nugget=1e-8,
        )
        assert all(
            k.startswith("dense/") for k in res.report.plan.counts()
        )
