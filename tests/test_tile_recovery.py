"""Numerical recovery ladder for MP/TLR Cholesky breakdowns."""

import numpy as np
import pytest

from repro.core import (
    DENSE_FP64,
    MP_DENSE_TLR,
    fit_mle,
    get_variant,
    loglikelihood,
)
from repro.exceptions import (
    ConfigurationError,
    NotPositiveDefiniteError,
    RecoveryExhaustedError,
)
from repro.kernels import MaternKernel
from repro.tile import (
    DEFAULT_RECOVERY,
    Precision,
    RecoveryPolicy,
    build_planned_covariance,
)


@pytest.fixture(scope="module")
def hard_problem():
    """An ill-conditioned Matern field that breaks aggressive MP/TLR
    factorization: huge range + high smoothness."""
    gen = np.random.default_rng(3)
    x = gen.uniform(size=(160, 2))
    theta = np.array([1.0, 2.5, 2.5])
    z = gen.standard_normal(160)
    return MaternKernel(), theta, x, z


@pytest.fixture(scope="module")
def harsh_variant():
    """MP/TLR with demotion aggressive enough to lose definiteness."""
    return MP_DENSE_TLR.with_(name="harsh", mp_accuracy=1e-1, tlr_tol=1e-1)


class TestAssemblyOverrides:
    def test_min_precisions_global_floor(self, matern, theta_matern, locations_200):
        mat, report = build_planned_covariance(
            matern, theta_matern, locations_200, 40,
            use_mp=True, min_precisions=Precision.FP64,
        )
        assert set(report.plan.precisions.values()) == {Precision.FP64}

    def test_min_precisions_per_tile(self, matern, theta_matern, locations_200):
        _, base = build_planned_covariance(
            matern, theta_matern, locations_200, 40, use_mp=True,
        )
        demoted = [
            key for key, p in base.plan.precisions.items()
            if p is not Precision.FP64
        ]
        assert demoted, "need at least one demoted tile for this test"
        target = demoted[0]
        _, report = build_planned_covariance(
            matern, theta_matern, locations_200, 40,
            use_mp=True, min_precisions={target: Precision.FP64},
        )
        assert report.plan.precisions[target] is Precision.FP64
        # Other decisions are untouched.
        for key, p in base.plan.precisions.items():
            if key != target:
                assert report.plan.precisions[key] is p

    def test_force_dense_all(self, matern, theta_matern, locations_200):
        _, report = build_planned_covariance(
            matern, theta_matern, locations_200, 40,
            use_tlr=True, band_size=1, force_dense=True,
        )
        assert not any(report.plan.use_lr.values())


class TestRecoveryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(max_jitter_attempts=-1)
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(initial_jitter=0.0)
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(max_jitter=1e-12, initial_jitter=1e-10)
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(jitter_growth=1.0)

    def test_variant_registry(self):
        cfg = get_variant("tlr-recover")
        assert cfg.name == "mp-dense-tlr-recover"
        assert cfg.recovery == DEFAULT_RECOVERY
        assert get_variant("mp-dense-tlr").recovery is None


class TestLadderEscalation:
    def test_hard_problem_fails_without_recovery(self, hard_problem, harsh_variant):
        kernel, theta, x, z = hard_problem
        with pytest.raises(NotPositiveDefiniteError):
            loglikelihood(kernel, theta, x, z, tile_size=32, variant=harsh_variant)

    def test_escalation_order_and_rescue(self, hard_problem, harsh_variant):
        kernel, theta, x, z = hard_problem
        rec = harsh_variant.with_(name="harsh-rec", recovery=DEFAULT_RECOVERY)
        result = loglikelihood(kernel, theta, x, z, tile_size=32, variant=rec)
        assert np.isfinite(result.value)
        report = result.recovery
        assert report is not None and report.recovered
        # The ladder must escalate in its documented order, never skip
        # ahead: each attempted rung appears before the next one.
        expected = ("promote_tile", "promote_band", "densify", "jitter")
        assert report.steps == expected[: len(report.steps)]
        assert report.actions[-1].succeeded
        assert all(not a.succeeded for a in report.actions[:-1])
        assert report.attempts == len(report.actions) + 1

    def test_no_recovery_report_when_not_needed(
        self, matern, theta_matern, locations_200, rng
    ):
        z = rng.standard_normal(200)
        rec = DENSE_FP64.with_(name="d64-rec", recovery=DEFAULT_RECOVERY)
        result = loglikelihood(
            matern, theta_matern, locations_200, z,
            tile_size=40, variant=rec, nugget=1e-8,
        )
        assert result.recovery is None

    def test_jitter_rescues_singular_matrix(self):
        gen = np.random.default_rng(5)
        pts = gen.uniform(size=(60, 2))
        x = np.vstack([pts, pts])  # duplicated locations: exactly singular
        z = gen.standard_normal(120)
        rec = DENSE_FP64.with_(name="d64-rec", recovery=DEFAULT_RECOVERY)
        result = loglikelihood(
            MaternKernel(), np.array([1.0, 0.1, 0.5]), x, z,
            tile_size=30, variant=rec,
        )
        assert result.recovery is not None
        assert result.recovery.steps[-1] == "jitter"
        assert result.recovery.jitter_added > 0

    def test_exhaustion_raises_with_report(self):
        gen = np.random.default_rng(5)
        pts = gen.uniform(size=(60, 2))
        x = np.vstack([pts, pts])
        z = gen.standard_normal(120)
        # Jitter disabled: nothing can rescue an exactly singular matrix.
        rec = DENSE_FP64.with_(
            name="d64-rec0", recovery=RecoveryPolicy(max_jitter_attempts=0)
        )
        with pytest.raises(RecoveryExhaustedError) as info:
            loglikelihood(
                MaternKernel(), np.array([1.0, 0.1, 0.5]), x, z,
                tile_size=30, variant=rec,
            )
        err = info.value
        assert isinstance(err, NotPositiveDefiniteError)
        assert err.report is not None and not err.report.recovered
        assert err.report.steps == ("promote_tile", "promote_band", "densify")


class TestRecoveredFit:
    def test_previously_failing_fit_converges(self, hard_problem, harsh_variant):
        """Acceptance: a fit whose every evaluation broke down under the
        harsh variant converges once the ladder is enabled, and the
        rescues are surfaced on the MLEResult."""
        kernel, theta, x, z = hard_problem
        plain = fit_mle(
            kernel, x, z, tile_size=32, variant=harsh_variant,
            theta0=theta, max_iter=6,
        )
        assert plain.failed_evaluations > 0
        rec = harsh_variant.with_(name="harsh-rec", recovery=DEFAULT_RECOVERY)
        fitted = fit_mle(
            kernel, x, z, tile_size=32, variant=rec,
            theta0=theta, max_iter=6,
        )
        assert np.isfinite(fitted.loglik)
        assert fitted.recovered_evaluations > 0
        assert fitted.recovery_reports
        assert all(r.actions for r in fitted.recovery_reports)
