"""Tests for the second wave of extensions: nugget kernel, k-d tree
ordering, iterative refinement, replicated likelihood, Chrome traces,
and the CLI."""

import json

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.kernels import MaternKernel, NuggetKernel
from repro.ordering import kdtree_order, order_points
from repro.tile import (
    build_planned_covariance,
    refine_solve,
    tile_cholesky,
)


class TestNuggetKernel:
    def test_param_names_extend_base(self):
        kern = NuggetKernel(MaternKernel())
        assert kern.param_names == ("variance", "range", "smoothness", "nugget")

    def test_diagonal_gets_nugget(self, rng):
        kern = NuggetKernel(MaternKernel())
        x = rng.uniform(size=(12, 2))
        theta = np.array([1.0, 0.1, 0.5, 0.3])
        c = kern.covariance_matrix(theta, x)
        np.testing.assert_allclose(np.diag(c), 1.3, rtol=1e-12)

    def test_cross_covariance_no_nugget(self, rng):
        kern = NuggetKernel(MaternKernel())
        x1 = rng.uniform(size=(5, 2))
        x2 = rng.uniform(size=(6, 2))
        theta = np.array([1.0, 0.1, 0.5, 0.3])
        c = kern(theta, x1, x2)
        base = MaternKernel()(theta[:3], x1, x2)
        np.testing.assert_allclose(c, base)

    def test_variance_includes_nugget(self):
        kern = NuggetKernel(MaternKernel())
        assert kern.variance(np.array([1.0, 0.1, 0.5, 0.3])) == pytest.approx(1.3)

    def test_nugget_estimable(self, rng):
        """MLE recovers a substantial nugget (within a loose factor)."""
        from repro.core import fit_mle
        from repro.data import sample_gaussian_field

        kern = NuggetKernel(MaternKernel())
        x = rng.uniform(size=(250, 2))
        x = x[order_points(x, "morton")]
        theta_true = np.array([1.0, 0.15, 0.8, 0.4])
        z = sample_gaussian_field(kern, theta_true, x, seed=9)
        res = fit_mle(kern, x, z, tile_size=50, theta0=theta_true,
                      max_iter=60)
        assert 0.1 < res.theta[3] < 1.0

    def test_split_theta(self):
        kern = NuggetKernel(MaternKernel())
        base, nug = kern.split_theta(np.array([1.0, 0.1, 0.5, 0.2]))
        assert nug == pytest.approx(0.2)
        assert base.shape == (3,)


class TestKDTreeOrdering:
    def test_is_permutation(self, rng):
        x = rng.uniform(size=(137, 2))
        perm = kdtree_order(x)
        assert sorted(perm) == list(range(137))

    def test_deterministic(self, rng):
        x = rng.uniform(size=(64, 2))
        np.testing.assert_array_equal(kdtree_order(x), kdtree_order(x))

    def test_leaves_are_spatially_tight(self, rng):
        """Points within a leaf are closer on average than random
        groups of the same size."""
        x = rng.uniform(size=(256, 2))
        perm = kdtree_order(x, leaf_size=16)
        xp = x[perm]

        def mean_group_diameter(pts):
            total = 0.0
            for g in range(0, 256, 16):
                block = pts[g : g + 16]
                total += np.linalg.norm(
                    block - block.mean(axis=0), axis=1
                ).mean()
            return total

        assert mean_group_diameter(xp) < 0.6 * mean_group_diameter(x)

    def test_dispatcher_integration(self, rng):
        x = rng.uniform(size=(50, 2))
        perm = order_points(x, "kdtree")
        assert sorted(perm) == list(range(50))

    def test_space_time_dispatch(self, rng):
        space = rng.uniform(size=(10, 2))
        x = np.vstack([
            np.column_stack([space, np.full(10, float(t))]) for t in range(2)
        ])
        perm = order_points(x, "kdtree", space_time=True)
        xp = x[perm]
        for i in range(0, 20, 2):
            assert np.allclose(xp[i, :2], xp[i + 1, :2])

    def test_invalid_leaf(self, rng):
        with pytest.raises(ShapeError):
            kdtree_order(rng.uniform(size=(10, 2)), leaf_size=0)

    def test_reduces_ranks_like_morton(self, rng):
        from repro.kernels import MaternKernel as MK

        x = rng.uniform(size=(400, 2))
        theta = np.array([1.0, 0.1, 0.5])

        def mean_rank(method):
            xo = x[order_points(x, method, seed=3)]
            _, rep = build_planned_covariance(
                MK(), theta, xo, 50, nugget=1e-8, use_tlr=True, band_size=1
            )
            return np.mean(list(rep.ranks.values()))

        assert mean_rank("kdtree") < 0.6 * mean_rank("random")


class TestRefinement:
    @pytest.fixture(scope="class")
    def problem(self):
        from repro.kernels import MaternKernel as MK

        gen = np.random.default_rng(31)
        x = gen.uniform(size=(240, 2))
        x = x[order_points(x, "morton")]
        kern = MK()
        theta = np.array([1.0, 0.1, 0.5])
        exact, _ = build_planned_covariance(kern, theta, x, 40, nugget=1e-8)
        approx, rep = build_planned_covariance(
            kern, theta, x, 40, nugget=1e-8, use_mp=True, use_tlr=True,
            band_size=2, tlr_tol=1e-4, mp_accuracy=1e-4,
        )
        factor, _ = tile_cholesky(approx, tile_tol=rep.tile_tol)
        return exact, factor, gen.standard_normal(240)

    def test_improves_residual(self, problem):
        exact, factor, b = problem
        res = refine_solve(exact, factor, b, tol=1e-12, max_iter=8)
        assert res.residual_norms[0] > 1e-9  # crude factor to start
        assert res.final_residual < res.residual_norms[0]
        assert res.final_residual < 1e-10

    def test_converged_flag(self, problem):
        exact, factor, b = problem
        res = refine_solve(exact, factor, b, tol=1e-10, max_iter=20)
        assert res.converged

    def test_zero_rhs(self, problem):
        exact, factor, _ = problem
        res = refine_solve(exact, factor, np.zeros(240))
        assert res.converged
        np.testing.assert_array_equal(res.x, np.zeros(240))

    def test_dimension_check(self, problem):
        exact, factor, _ = problem
        with pytest.raises(ShapeError):
            refine_solve(exact, factor, np.zeros(7))

    def test_residuals_monotone_until_stop(self, problem):
        exact, factor, b = problem
        res = refine_solve(exact, factor, b, tol=0.0, max_iter=6)
        rs = res.residual_norms
        assert all(b <= a * 1.001 for a, b in zip(rs, rs[1:]))


class TestReplicatedLikelihood:
    def test_matches_per_replicate(self, matern, theta_matern, locations_200):
        from repro.core import loglikelihood, loglikelihood_replicated
        from repro.data import sample_gaussian_field

        fields = sample_gaussian_field(
            matern, theta_matern, locations_200, seed=8, size=5
        )
        batch = loglikelihood_replicated(
            matern, theta_matern, locations_200, fields,
            tile_size=40, nugget=1e-8,
        )
        singles = [
            loglikelihood(
                matern, theta_matern, locations_200, fields[r],
                tile_size=40, nugget=1e-8,
            ).value
            for r in range(5)
        ]
        np.testing.assert_allclose(batch, singles, rtol=1e-12)

    def test_shape_validation(self, matern, theta_matern, locations_200):
        from repro.core import loglikelihood_replicated

        with pytest.raises(ShapeError):
            loglikelihood_replicated(
                matern, theta_matern, locations_200, np.zeros(200),
                tile_size=40,
            )


class TestChromeTrace:
    def test_events_serializable(self):
        from repro.runtime.trace import ExecutionTrace, TaskRecord

        tr = ExecutionTrace(nodes=2, cores_per_node=1)
        tr.add(TaskRecord(0, "potrf", 0, 0, 0.0, 1.0, flops=5.0))
        tr.add(TaskRecord(1, "gemm", 1, 0, 1.0, 2.5, comm_bytes=10.0))
        events = tr.to_chrome_trace()
        text = json.dumps(events)
        loaded = json.loads(text)
        assert len(loaded) == 2
        assert loaded[0]["ph"] == "X"
        assert loaded[1]["pid"] == 1
        assert loaded[1]["dur"] == pytest.approx(1.5e6)


class TestCLI:
    def test_info(self, capsys):
        from repro.__main__ import main

        assert main(["info"]) == 0
        assert "repro" in capsys.readouterr().out

    def test_crossover(self, capsys):
        from repro.__main__ import main

        assert main(["crossover", "--tile", "800"]) == 0
        out = capsys.readouterr().out
        assert "crossover rank" in out

    def test_scaling(self, capsys):
        from repro.__main__ import main

        assert main(["scaling", "--nodes", "1024", "--matrix", "2000000"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_unknown_command(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["frobnicate"])
