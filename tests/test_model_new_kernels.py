"""End-to-end model tests with the extension kernels."""

import numpy as np

from repro import ExaGeoStatModel
from repro.data import sample_gaussian_field
from repro.kernels import (
    AnisotropicMaternKernel,
    BivariateMaternKernel,
    stack_bivariate,
)


class TestAnisotropicModel:
    def test_fit_recovers_anisotropy_direction(self, rng):
        kern = AnisotropicMaternKernel()
        theta_true = np.array([1.0, 0.4, 0.08, 0.0, 0.5])
        x = rng.uniform(size=(300, 2))
        z = sample_gaussian_field(kern, theta_true, x, seed=11)
        model = ExaGeoStatModel(kernel="anisotropic", variant="mp-dense-tlr",
                                tile_size=60)
        model.fit(x, z, theta0=theta_true, max_iter=50)
        # Major range estimated larger than minor range.
        assert model.theta_[1] > model.theta_[2]
        mspe_trivial = float(np.mean(z**2))
        x_new = rng.uniform(size=(40, 2))
        pred = model.predict(x_new)
        assert pred.mean.shape == (40,)
        assert np.isfinite(model.loglik_)
        assert model.loglik_ > -1e6 and mspe_trivial > 0

    def test_alias_resolves(self):
        model = ExaGeoStatModel(kernel="anisotropic")
        assert isinstance(model.kernel, AnisotropicMaternKernel)


class TestBivariateModel:
    def test_fit_predict_workflow(self, rng):
        kern = BivariateMaternKernel()
        theta_true = np.array([1.2, 0.8, 0.15, 0.5, 1.0, 0.6])
        space = rng.uniform(size=(120, 2))
        x = stack_bivariate(space)
        z = sample_gaussian_field(kern, theta_true, x, seed=13)
        model = ExaGeoStatModel(kernel="bivariate", variant="mp-dense",
                                tile_size=48)
        model.set_params(theta_true, x, z)
        # Predict variable 0 at new spatial points.
        new_space = rng.uniform(size=(25, 2))
        x_new = np.column_stack([new_space, np.zeros(25)])
        pred = model.predict(x_new, return_uncertainty=True)
        assert pred.mean.shape == (25,)
        assert np.all(pred.variance <= 1.2 + 1e-6)

    def test_cross_variable_prediction_beats_univariate(self, rng):
        """Observing the correlated second variable improves prediction
        of the first — the point of multivariate geostatistics."""
        from repro.core import kriging_predict, loglikelihood
        from repro.kernels import MaternKernel

        kern = BivariateMaternKernel()
        theta = np.array([1.0, 1.0, 0.15, 0.5, 0.5, 0.9])
        space = rng.uniform(size=(150, 2))
        x = stack_bivariate(space)
        z = sample_gaussian_field(kern, theta, x, seed=17)
        z1, z2 = z[:150], z[150:]

        # Hold out 30 var-1 points.
        hold = np.arange(120, 150)
        keep = np.arange(120)

        # Bivariate: train on var1[keep] + all of var2.
        x_tr = np.vstack([
            np.column_stack([space[keep], np.zeros(len(keep))]),
            np.column_stack([space, np.ones(150)]),
        ])
        z_tr = np.concatenate([z1[keep], z2])
        fac = loglikelihood(kern, theta, x_tr, z_tr, tile_size=54,
                            nugget=1e-10).factor
        x_te = np.column_stack([space[hold], np.zeros(30)])
        pred_bi = kriging_predict(kern, theta, x_tr, z_tr, x_te, fac)
        mspe_bi = float(np.mean((pred_bi.mean - z1[hold]) ** 2))

        # Univariate: var1 only.
        mk = MaternKernel()
        th1 = np.array([1.0, 0.15, 0.5])
        fac1 = loglikelihood(mk, th1, space[keep], z1[keep], tile_size=40,
                             nugget=1e-10).factor
        pred_uni = kriging_predict(mk, th1, space[keep], z1[keep],
                                   space[hold], fac1)
        mspe_uni = float(np.mean((pred_uni.mean - z1[hold]) ** 2))

        assert mspe_bi < mspe_uni

    def test_alias_resolves(self):
        model = ExaGeoStatModel(kernel="bivariate")
        assert isinstance(model.kernel, BivariateMaternKernel)
