"""Tests for the numerical-hygiene linter (repro.analysis.lint)."""

import json

from repro.__main__ import main as cli_main
from repro.analysis import lint_paths, lint_source


def rules_of(source):
    return [d.rule for d in lint_source(source)]


class TestLint000ParseError:
    def test_unparsable_source_reported(self):
        rep = lint_source("def (:\n", filename="bad.py")
        assert [d.rule for d in rep.errors] == ["LINT000"]
        assert rep.errors[0].file == "bad.py"

    def test_valid_source_clean(self):
        assert rules_of("x = 1\n") == []


class TestLint001UnseededRng:
    def test_unseeded_default_rng_flagged(self):
        assert rules_of("g = np.random.default_rng()\n") == ["LINT001"]

    def test_unseeded_random_random_flagged(self):
        assert rules_of("g = random.Random()\n") == ["LINT001"]

    def test_seeded_rng_clean(self):
        assert rules_of("g = np.random.default_rng(42)\n") == []
        assert rules_of("g = random.Random(7)\n") == []


class TestLint002FloatEquality:
    def test_inexact_literal_equality_flagged(self):
        rep = lint_source("ok = x == 0.1\n")
        assert [d.rule for d in rep.warnings] == ["LINT002"]

    def test_inexact_literal_inequality_flagged(self):
        assert rules_of("ok = 3.3 != y\n") == ["LINT002"]

    def test_exact_literal_clean(self):
        assert rules_of("ok = x == 0.5\n") == []
        assert rules_of("ok = x == 1.0\n") == []

    def test_ordering_comparisons_clean(self):
        assert rules_of("ok = x < 0.1\n") == []


class TestLint003SilentHandler:
    def test_bare_handler_pass_is_error(self):
        src = "try:\n    f()\nexcept:\n    pass\n"
        rep = lint_source(src)
        assert [d.rule for d in rep.errors] == ["LINT003"]

    def test_broad_handler_pass_is_error(self):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert [d.rule for d in lint_source(src).errors] == ["LINT003"]

    def test_narrow_handler_pass_is_warning(self):
        src = "try:\n    f()\nexcept ValueError:\n    pass\n"
        rep = lint_source(src)
        assert rep.ok
        assert [d.rule for d in rep.warnings] == ["LINT003"]

    def test_handler_with_body_clean(self):
        src = "try:\n    f()\nexcept ValueError:\n    x = 1\n"
        assert rules_of(src) == []


class TestLint004MutableDefault:
    def test_list_literal_default_flagged(self):
        assert rules_of("def f(a=[]):\n    pass\n") == ["LINT004"]

    def test_constructor_default_flagged(self):
        assert rules_of("def f(a=dict()):\n    pass\n") == ["LINT004"]

    def test_kwonly_default_flagged(self):
        assert rules_of("def f(*, a={}):\n    pass\n") == ["LINT004"]

    def test_none_default_clean(self):
        assert rules_of("def f(a=None, b=()):\n    pass\n") == []


class TestLint005NarrowingAstype:
    def test_astype_float16_flagged(self):
        rep = lint_source("b = a.astype(np.float16)\n")
        assert [d.rule for d in rep.warnings] == ["LINT005"]

    def test_astype_string_dtype_flagged(self):
        assert rules_of("b = a.astype('float32')\n") == ["LINT005"]

    def test_astype_float64_clean(self):
        assert rules_of("b = a.astype(np.float64)\n") == []

    def test_explicit_casting_kwarg_clean(self):
        src = "b = a.astype(np.float16, casting='same_kind')\n"
        assert rules_of(src) == []


class TestLint006CheckFinite:
    def test_unguarded_solve_triangular_flagged(self):
        rep = lint_source("x = sla.solve_triangular(a, b)\n")
        assert [d.rule for d in rep.warnings] == ["LINT006"]

    def test_guarded_call_clean(self):
        src = "x = sla.solve_triangular(a, b, check_finite=False)\n"
        assert rules_of(src) == []

    def test_numpy_solve_exempt(self):
        # np.linalg.solve has no check_finite parameter.
        assert rules_of("x = np.linalg.solve(a, b)\n") == []

    def test_scipy_generic_solve_flagged(self):
        assert rules_of("x = sla.solve(a, b)\n") == ["LINT006"]
        assert rules_of("x = scipy.linalg.solve(a, b)\n") == ["LINT006"]

    def test_solver_object_solve_exempt(self):
        # Solver *objects* (PanelSolver, engines) expose .solve()
        # without a check_finite parameter.
        assert rules_of("x = solver.solve(b)\n") == []
        assert rules_of("x = self.solver.solve(b)\n") == []


class TestLint007EvalExec:
    def test_eval_flagged(self):
        assert rules_of("y = eval('x')\n") == ["LINT007"]

    def test_exec_flagged(self):
        assert rules_of("exec('x = 1')\n") == ["LINT007"]

    def test_literal_eval_clean(self):
        assert rules_of("y = ast.literal_eval(s)\n") == []


class TestLint008IdentityLiteral:
    def test_is_against_int_literal_flagged(self):
        rep = lint_source("ok = x is 5\n")
        assert [d.rule for d in rep.errors] == ["LINT008"]

    def test_is_not_against_str_literal_flagged(self):
        assert rules_of("ok = x is not 'a'\n") == ["LINT008"]

    def test_singleton_identity_clean(self):
        assert rules_of("ok = x is None\n") == []
        assert rules_of("ok = x is True\n") == []
        assert rules_of("ok = x is ...\n") == []


class TestSuppression:
    def test_bare_ignore_suppresses_all_rules(self):
        src = "g = np.random.default_rng()  # lint: ignore\n"
        assert rules_of(src) == []

    def test_listed_ignore_suppresses_named_rule(self):
        src = "b = a.astype(np.float16)  # lint: ignore[LINT005]\n"
        assert rules_of(src) == []

    def test_listed_ignore_keeps_other_rules(self):
        src = "g = np.random.default_rng()  # lint: ignore[LINT005]\n"
        assert rules_of(src) == ["LINT001"]


class TestLint009LockNaming:
    POOL_CLASS = """
import threading
from concurrent.futures import ThreadPoolExecutor

class Engine:
    def __init__(self):
        self.{attr} = threading.{ctor}()

    def run(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            pool.submit(print)
"""

    def test_off_convention_lock_in_pool_spawner_flagged(self):
        src = self.POOL_CLASS.format(attr="mutex", ctor="Lock")
        rep = lint_source(src)
        assert [d.rule for d in rep.warnings] == ["LINT009"]

    def test_public_lock_name_flagged(self):
        src = self.POOL_CLASS.format(attr="lock", ctor="Lock")
        assert "LINT009" in rules_of(src)

    def test_convention_lock_clean(self):
        for attr in ("_lock", "_tile_lock", "_lock_cache"):
            src = self.POOL_CLASS.format(attr=attr, ctor="Lock")
            assert rules_of(src) == [], attr

    def test_rlock_and_condition_also_checked(self):
        for ctor in ("RLock", "Condition"):
            src = self.POOL_CLASS.format(attr="guard", ctor=ctor)
            assert "LINT009" in rules_of(src), ctor

    def test_no_pool_no_finding(self):
        src = """
import threading

class Quiet:
    def __init__(self):
        self.mutex = threading.Lock()
"""
        assert rules_of(src) == []


class TestLintPaths:
    def test_walks_directories_and_skips_hidden(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("y = eval('x')\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "skipped.py").write_text("y = eval('x')\n")
        rep = lint_paths([tmp_path])
        assert [d.rule for d in rep.errors] == ["LINT007"]
        assert "mod.py" in rep.errors[0].file

    def test_repository_tree_is_clean(self):
        rep = lint_paths(["src", "benchmarks", "tests", "examples"])
        assert rep.ok, rep.render_text()


class TestAnalyzeCli:
    def test_lint_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("y = eval('x')\n")
        assert cli_main(["analyze", "--lint", str(bad)]) == 1
        good = tmp_path / "good.py"
        good.write_text("y = 1\n")
        assert cli_main(["analyze", "--lint", str(good)]) == 0

    def test_json_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("y = eval('x')\n")
        cli_main(["analyze", "--lint", str(bad), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "LINT007"

    def test_rules_catalog(self, capsys):
        assert cli_main(["analyze", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("PLAN001", "DAG003", "LINT007"):
            assert rule in out

    def test_no_target_is_usage_error(self, capsys):
        assert cli_main(["analyze"]) == 2
