"""Tests for MLE uncertainty quantification and conditional simulation."""

import numpy as np
import pytest

from repro.core import (
    conditional_simulation,
    kriging_predict,
    loglikelihood,
    mle_uncertainty,
    observed_information,
    profile_likelihood,
)
from repro.exceptions import ParameterError
from repro.kernels import MaternKernel
from repro.ordering import order_points


@pytest.fixture(scope="module")
def fitted():
    """A dataset with its MLE (computed once)."""
    from repro.core import fit_mle
    from repro.data import sample_gaussian_field

    kern = MaternKernel()
    gen = np.random.default_rng(404)
    x = gen.uniform(size=(220, 2))
    x = x[order_points(x, "morton")]
    theta_true = np.array([1.0, 0.1, 0.5])
    z = sample_gaussian_field(kern, theta_true, x, seed=405)
    res = fit_mle(kern, x, z, tile_size=44, theta0=theta_true, max_iter=80)
    return kern, x, z, theta_true, res.theta


class TestObservedInformation:
    def test_symmetric_positive_definite(self, fitted):
        kern, x, z, _, theta_hat = fitted
        info = observed_information(kern, theta_hat, x, z, tile_size=44)
        np.testing.assert_allclose(info, info.T, atol=1e-6 * np.abs(info).max())
        assert np.linalg.eigvalsh(info).min() > 0.0

    def test_scales_with_data(self, fitted):
        """Twice the data ≈ twice the information (order of magnitude)."""
        from repro.data import sample_gaussian_field

        kern, x, z, theta_true, theta_hat = fitted
        gen = np.random.default_rng(406)
        x2 = gen.uniform(size=(440, 2))
        x2 = x2[order_points(x2, "morton")]
        z2 = sample_gaussian_field(kern, theta_true, x2, seed=407)
        i1 = observed_information(kern, theta_true, x, z, tile_size=44)
        i2 = observed_information(kern, theta_true, x2, z2, tile_size=44)
        # Compare the variance curvature (most stable entry).
        assert i2[0, 0] > i1[0, 0]


class TestMLEUncertainty:
    def test_intervals_cover_truth(self, fitted):
        kern, x, z, theta_true, theta_hat = fitted
        uq = mle_uncertainty(kern, theta_hat, x, z, tile_size=44, level=0.99)
        for k in range(3):
            assert uq.lower[k] <= theta_true[k] * 1.5
        # At 99%, truth inside the interval for at least 2 of 3 params
        # (single realization, small n).
        inside = sum(
            uq.lower[k] <= theta_true[k] <= uq.upper[k] for k in range(3)
        )
        assert inside >= 2

    def test_se_positive_and_finite(self, fitted):
        kern, x, z, _, theta_hat = fitted
        uq = mle_uncertainty(kern, theta_hat, x, z, tile_size=44)
        assert np.all(uq.standard_errors > 0)
        assert np.all(np.isfinite(uq.standard_errors))

    def test_named_interval(self, fitted):
        kern, x, z, _, theta_hat = fitted
        uq = mle_uncertainty(kern, theta_hat, x, z, tile_size=44)
        lo, hi = uq.interval("range")
        assert lo < theta_hat[1] < hi

    def test_summary_rows(self, fitted):
        kern, x, z, _, theta_hat = fitted
        uq = mle_uncertainty(kern, theta_hat, x, z, tile_size=44)
        rows = uq.summary_rows()
        assert len(rows) == 3
        assert rows[0][0] == "variance"

    def test_variants_give_close_uncertainty(self, fitted):
        """UQ under MP+TLR matches dense FP64 (the approximations do
        not distort the curvature)."""
        kern, x, z, _, theta_hat = fitted
        u1 = mle_uncertainty(kern, theta_hat, x, z, tile_size=44,
                             variant="dense-fp64")
        u2 = mle_uncertainty(kern, theta_hat, x, z, tile_size=44,
                             variant="mp-dense-tlr")
        np.testing.assert_allclose(
            u1.standard_errors, u2.standard_errors, rtol=0.2
        )


class TestProfileLikelihood:
    def test_peaks_near_theta_hat(self, fitted):
        kern, x, z, _, theta_hat = fitted
        values = np.linspace(0.5 * theta_hat[1], 2.0 * theta_hat[1], 9)
        prof = profile_likelihood(
            kern, theta_hat, x, z, "range", values, tile_size=44
        )
        best = values[int(np.argmax(prof))]
        assert abs(best - theta_hat[1]) <= 0.6 * theta_hat[1]

    def test_unknown_parameter(self, fitted):
        kern, x, z, _, theta_hat = fitted
        with pytest.raises(ParameterError):
            profile_likelihood(
                kern, theta_hat, x, z, "wiggliness", np.array([1.0]),
                tile_size=44,
            )


class TestConditionalSimulation:
    @pytest.fixture(scope="class")
    def setup(self, fitted):
        kern, x, z, theta_true, theta_hat = fitted
        gen = np.random.default_rng(408)
        x_test = gen.uniform(size=(30, 2))
        factor = loglikelihood(kern, theta_hat, x, z, tile_size=44).factor
        return kern, x, z, theta_hat, x_test, factor

    def test_moments_match_kriging(self, setup):
        kern, x, z, theta_hat, x_test, factor = setup
        draws = conditional_simulation(
            kern, theta_hat, x, z, x_test, factor, size=400, seed=1
        )
        pred = kriging_predict(
            kern, theta_hat, x, z, x_test, factor, return_uncertainty=True
        )
        se = pred.standard_error()
        # Monte Carlo error at 400 draws: ~3 sd tolerance.
        np.testing.assert_allclose(
            draws.mean(axis=0), pred.mean, atol=4 * se.max() / np.sqrt(400) * 3 + 0.05
        )
        np.testing.assert_allclose(draws.std(axis=0), se, atol=0.12)

    def test_exact_at_training_points(self, setup):
        kern, x, z, theta_hat, _, factor = setup
        draws = conditional_simulation(
            kern, theta_hat, x, z, x[:5], factor, size=20, seed=2
        )
        np.testing.assert_allclose(
            draws, np.tile(z[:5], (20, 1)), atol=1e-3
        )

    def test_single_draw_shape(self, setup):
        kern, x, z, theta_hat, x_test, factor = setup
        one = conditional_simulation(
            kern, theta_hat, x, z, x_test, factor, seed=3
        )
        assert one.shape == (30,)

    def test_seeded_reproducible(self, setup):
        kern, x, z, theta_hat, x_test, factor = setup
        d1 = conditional_simulation(
            kern, theta_hat, x, z, x_test, factor, size=3, seed=4
        )
        d2 = conditional_simulation(
            kern, theta_hat, x, z, x_test, factor, size=3, seed=4
        )
        np.testing.assert_array_equal(d1, d2)

    def test_dimension_check(self, setup):
        from repro.exceptions import ShapeError

        kern, x, z, theta_hat, x_test, factor = setup
        with pytest.raises(ShapeError):
            conditional_simulation(
                kern, theta_hat, x, z[:10], x_test, factor
            )
