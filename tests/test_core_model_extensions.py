"""Tests for the model-level UQ and simulation API."""

import numpy as np
import pytest

from repro import ExaGeoStatModel
from repro.data import soil_moisture_surrogate


@pytest.fixture(scope="module")
def fitted_model():
    data = soil_moisture_surrogate(n_train=260, n_test=40, seed=606)
    model = ExaGeoStatModel(kernel="matern", variant="mp-dense-tlr",
                            tile_size=52)
    model.fit(data.x_train, data.z_train,
              theta0=data.theta_true, max_iter=60)
    return data, model


class TestModelUncertainty:
    def test_uncertainty_summary(self, fitted_model):
        _, model = fitted_model
        uq = model.uncertainty()
        assert uq.param_names == ("variance", "range", "smoothness")
        assert np.all(uq.standard_errors > 0)
        for k in range(3):
            assert uq.lower[k] < model.theta_[k] < uq.upper[k]

    def test_level_widens_interval(self, fitted_model):
        _, model = fitted_model
        narrow = model.uncertainty(level=0.5)
        wide = model.uncertainty(level=0.99)
        assert np.all(wide.upper - wide.lower > narrow.upper - narrow.lower)


class TestModelSimulate:
    def test_draws_shape(self, fitted_model):
        data, model = fitted_model
        draws = model.simulate(data.x_test, size=7, seed=1)
        assert draws.shape == (7, 40)

    def test_draws_consistent_with_predict(self, fitted_model):
        data, model = fitted_model
        pred = model.predict(data.x_test, return_uncertainty=True)
        draws = model.simulate(data.x_test, size=300, seed=2)
        np.testing.assert_allclose(
            draws.mean(axis=0), pred.mean,
            atol=4 * pred.standard_error().max() / np.sqrt(300) * 3 + 0.05,
        )

    def test_requires_fit(self):
        from repro.exceptions import ReproError

        model = ExaGeoStatModel()
        with pytest.raises(ReproError):
            model.simulate(np.zeros((2, 2)))
