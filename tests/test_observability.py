"""Tests for the unified telemetry layer (tracer, metrics, exporters,
and the instrumented real execution paths)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import fit_mle, loglikelihood
from repro.core.model import ExaGeoStatModel
from repro.kernels import MaternKernel
from repro.obs import MetricsRegistry, Telemetry, maybe_span
from repro.obs.export import op_breakdown, render_prometheus
from repro.obs.tracer import Tracer, current_span_id, span_tuple
from repro.ordering import order_points

THETA = np.array([1.0, 0.1, 0.5])
NUGGET = 1.0e-8


@pytest.fixture(scope="module")
def problem():
    gen = np.random.default_rng(42)
    x = gen.uniform(size=(160, 2))
    x = x[order_points(x, "morton")]
    kernel = MaternKernel()
    sigma = kernel.covariance_matrix(THETA, x, nugget=NUGGET)
    z = np.linalg.cholesky(sigma) @ gen.standard_normal(160)
    return kernel, x, z


# ----------------------------------------------------------------------
# tracer core
# ----------------------------------------------------------------------
class TestTracer:
    def test_contextvar_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer_sid:
            assert current_span_id() == outer_sid
            with tracer.span("inner"):
                pass
        assert current_span_id() is None
        outer, inner = tracer.by_name("outer")[0], tracer.by_name("inner")[0]
        assert inner.parent == outer.sid
        assert outer.parent is None
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_explicit_parent_overrides_context(self):
        tracer = Tracer()
        with tracer.span("a") as a_sid:
            with tracer.span("b", parent=None):
                pass
            with tracer.span("c", parent=a_sid):
                pass
        assert tracer.by_name("b")[0].parent is None
        assert tracer.by_name("c")[0].parent == a_sid

    def test_exception_annotates_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        span = tracer.by_name("doomed")[0]
        assert span.attrs["error"] == "ValueError"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("x")
        second = tracer.span("y", op="potrf")
        assert first is second  # shared no-op context manager
        with first:
            tracer.event("e")
            assert current_span_id() is None
        assert len(tracer) == 0
        assert tracer.sorted_events() == []
        assert tracer.add_span("z", 0.0, 1.0) == 0

    def test_cross_process_merge_ordering(self):
        tracer = Tracer()
        root = tracer.add_span("root", 0.0, 10.0)
        # Worker records arrive per rank, out of global time order.
        tracer.merge_foreign(
            [span_tuple("potrf", 3.0, 4.0, {"uid": 2}),
             span_tuple("trsm", 1.0, 2.0, {"uid": 1})],
            pid=1, parent=root,
        )
        tracer.merge_foreign(
            [span_tuple("gemm", 2.5, 3.5, {"uid": 3})], pid=2, parent=root,
        )
        merged = tracer.sorted_spans()
        assert [s.name for s in merged] == ["root", "trsm", "gemm", "potrf"]
        assert [s.pid for s in merged] == [0, 1, 2, 1]
        assert all(s.parent == root for s in merged[1:])
        assert tracer.origin() == 0.0


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "count", ("op",))
        c.inc(2, "potrf")
        c.inc(1, "potrf")
        with pytest.raises(ValueError):
            c.inc(-1, "potrf")
        g = reg.gauge("g", "gauge")
        g.set(5)
        g.inc(-2)
        h = reg.histogram("h_seconds", "hist", buckets=(0.1, 1.0))
        for v in (0.05, 0.1, 0.5, 2.0):
            h.observe(v)
        snap = reg.snapshot()
        assert snap["c_total"]["series"][0]["value"] == 3.0
        assert snap["g"]["series"][0]["value"] == 3.0
        hs = snap["h_seconds"]["series"][0]
        # bisect_left => le semantics: 0.1 falls in the 0.1 bucket.
        assert hs["buckets"] == {"0.1": 2, "1.0": 3, "+Inf": 4}
        assert hs["count"] == 4
        assert hs["sum"] == pytest.approx(2.65)

    def test_kind_and_label_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("m", "d", ("op",))
        with pytest.raises(ValueError):
            reg.gauge("m", "d", ("op",))
        with pytest.raises(ValueError):
            reg.counter("m", "d", ("other",))

    def test_cardinality_bound(self):
        reg = MetricsRegistry(max_series=2)
        c = reg.counter("bound_total", "d", ("uid",))
        for uid in range(5):
            c.inc(1, uid)
        snap = reg.snapshot()
        series = snap["bound_total"]["series"]
        labels = [s["labels"] for s in series]
        assert {"overflow": "1"} in labels
        assert len(series) == 3  # two real series + the overflow sink
        assert reg.dropped_series == 3
        text = render_prometheus(reg)
        assert 'bound_total{overflow="1"} 3' in text
        assert "repro_metrics_dropped_series 3" in text


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExporters:
    @pytest.fixture()
    def traced(self, problem):
        kernel, x, z = problem
        telemetry = Telemetry()
        result = loglikelihood(
            kernel, THETA, x, z, tile_size=40, variant="mp-dense",
            nugget=NUGGET, workers=2, backend="thread",
            telemetry=telemetry,
        )
        return result, telemetry

    def test_chrome_trace_schema(self, traced):
        _, telemetry = traced
        events = json.loads(json.dumps(telemetry.chrome_trace_events()))
        metas = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in metas}
        assert any(
            e["name"] == "process_name" and e["args"]["name"] == "driver"
            for e in metas
        )
        completes = [e for e in events if e["ph"] == "X"]
        assert completes, "no complete events exported"
        for e in completes:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            assert "span_id" in e["args"]

    def test_prometheus_schema(self, traced):
        _, telemetry = traced
        text = telemetry.render_prometheus()
        lines = text.splitlines()
        helps = [ln for ln in lines if ln.startswith("# HELP")]
        types = [ln for ln in lines if ln.startswith("# TYPE")]
        assert len(helps) == len(types) >= 4
        samples = [ln for ln in lines if ln and not ln.startswith("#")]
        for ln in samples:
            float(ln.rsplit(" ", 1)[1])  # every sample value parses
        assert any(
            ln.startswith("repro_cholesky_kernels_total{") for ln in samples
        )

    def test_breakdown_self_time(self, traced):
        _, telemetry = traced
        rows = op_breakdown(telemetry.tracer)
        names = [r["name"] for r in rows]
        assert "loglikelihood" in names and "factorize" in names
        for row in rows:
            assert 0.0 <= row["self_s"] <= row["total_s"] + 1e-9
        # parent self-time excludes child time: the loglikelihood span
        # contains generate + factorize + solve, so its self share is
        # strictly below its total.
        ll = next(r for r in rows if r["name"] == "loglikelihood")
        assert ll["self_s"] < ll["total_s"]

    def test_profile_dump_round_trip(self, traced):
        _, telemetry = traced
        dump = json.loads(json.dumps(telemetry.profile_dump()))
        assert set(dump) >= {"spans", "events", "breakdown", "metrics"}
        assert all(s["start_s"] >= 0.0 for s in dump["spans"])


# ----------------------------------------------------------------------
# instrumented execution paths
# ----------------------------------------------------------------------
class TestRealPaths:
    @pytest.mark.parametrize("backend,workers", [
        ("thread", 2), ("sequential", 1),
    ])
    def test_traced_loglik_bit_identical(self, problem, backend, workers):
        kernel, x, z = problem
        telemetry = Telemetry()
        kwargs = dict(
            tile_size=40, variant="mp-dense-tlr", nugget=NUGGET,
            workers=workers, backend=backend,
        )
        plain = loglikelihood(kernel, THETA, x, z, **kwargs)
        traced = loglikelihood(
            kernel, THETA, x, z, telemetry=telemetry, **kwargs
        )
        assert traced.value == plain.value
        assert traced.logdet == plain.logdet
        assert len(telemetry.tracer) > 0

    def test_thread_backend_span_nesting(self, problem):
        kernel, x, z = problem
        telemetry = Telemetry()
        loglikelihood(
            kernel, THETA, x, z, tile_size=40, variant="mp-dense",
            nugget=NUGGET, workers=2, backend="thread",
            telemetry=telemetry,
        )
        factorize = telemetry.tracer.by_name("factorize")[0]
        tasks = [
            s for s in telemetry.tracer.spans
            if s.name in ("potrf", "trsm", "syrk", "gemm")
        ]
        assert tasks, "threaded executor emitted no per-task spans"
        assert all(s.parent == factorize.sid for s in tasks)
        assert all(
            factorize.start <= s.start <= s.end <= factorize.end
            for s in tasks
        )
        assert {"uid", "tile", "worker", "attempt"} <= set(tasks[0].attrs)

    def test_batched_backend_wave_spans(self, problem):
        kernel, x, z = problem
        telemetry = Telemetry()
        plain = loglikelihood(
            kernel, THETA, x, z, tile_size=40, variant="mp-dense",
            nugget=NUGGET, batch=True, workers=2,
        )
        traced = loglikelihood(
            kernel, THETA, x, z, tile_size=40, variant="mp-dense",
            nugget=NUGGET, batch=True, workers=2, telemetry=telemetry,
        )
        assert traced.value == plain.value
        factorize = telemetry.tracer.by_name("factorize")[0]
        waves = telemetry.tracer.by_name("wave")
        assert waves and all(w.parent == factorize.sid for w in waves)
        wave_sids = {w.sid for w in waves}
        tasks = [
            s for s in telemetry.tracer.spans
            if s.name in ("potrf", "trsm", "syrk", "gemm")
        ]
        assert tasks and all(s.parent in wave_sids for s in tasks)
        assert any(s.attrs.get("batched") for s in tasks)

    def test_process_backend_merged_timeline(self, problem):
        kernel, x, z = problem
        telemetry = Telemetry()
        plain = loglikelihood(
            kernel, THETA, x, z, tile_size=40, variant="mp-dense",
            nugget=NUGGET, backend="process", workers=2,
        )
        traced = loglikelihood(
            kernel, THETA, x, z, tile_size=40, variant="mp-dense",
            nugget=NUGGET, backend="process", workers=2,
            telemetry=telemetry,
        )
        assert traced.value == plain.value
        pids = {s.pid for s in telemetry.tracer.spans}
        assert pids == {0, 1, 2}
        factorize = telemetry.tracer.by_name("factorize")[0]
        worker_spans = [s for s in telemetry.tracer.spans if s.pid > 0]
        assert worker_spans
        assert all(s.parent == factorize.sid for s in worker_spans)
        # shared perf_counter epoch: worker spans sit inside the
        # driver's factorize window.
        assert all(
            factorize.start <= s.start <= s.end <= factorize.end
            for s in worker_spans
        )

    @pytest.mark.parametrize("variant", ["dense-fp64", "mp-dense-tlr"])
    def test_traced_fit_bit_identical(self, problem, variant):
        kernel, x, z = problem
        telemetry = Telemetry()
        kwargs = dict(
            tile_size=40, variant=variant, theta0=THETA, max_iter=4,
            nugget=NUGGET,
        )
        plain = fit_mle(kernel, x, z, **kwargs)
        traced = fit_mle(kernel, x, z, telemetry=telemetry, **kwargs)
        assert traced.loglik == plain.loglik
        assert traced.history == plain.history
        np.testing.assert_array_equal(traced.theta, plain.theta)
        events = [
            e for e in telemetry.tracer.sorted_events()
            if e.name == "mle_iteration"
        ]
        assert len(events) == plain.nfev
        first = events[0].attrs
        assert {"loglik", "theta", "rank_hist", "precision_mix",
                "nfev", "variant"} <= set(first)
        assert first["variant"] == variant

    def test_model_predict_spans_and_stats(self, problem):
        kernel, x, z = problem
        telemetry = Telemetry()
        model = ExaGeoStatModel(
            kernel=kernel, variant="mp-dense", tile_size=40,
            telemetry=telemetry,
        )
        model.fit(x, z, theta0=THETA, max_iter=3)
        gen = np.random.default_rng(7)
        x_new = gen.uniform(size=(30, 2))
        model.predict(x_new, return_uncertainty=True, batch=10, workers=2)
        predict = telemetry.tracer.by_name("predict")[0]
        batches = telemetry.tracer.by_name("predict_batch")
        assert len(batches) == 3
        assert all(b.parent == predict.sid for b in batches)
        snap = telemetry.registry.snapshot()
        assert "repro_serving" in snap
        assert "repro_breaker_open" in snap
        assert "repro_engine_evaluations" in snap

    def test_disabled_bundle_is_silent(self, problem):
        kernel, x, z = problem
        off = Telemetry(enabled=False)
        result = loglikelihood(
            kernel, THETA, x, z, tile_size=40, variant="mp-dense",
            nugget=NUGGET, telemetry=off,
        )
        plain = loglikelihood(
            kernel, THETA, x, z, tile_size=40, variant="mp-dense",
            nugget=NUGGET,
        )
        assert result.value == plain.value
        assert len(off.tracer) == 0
        assert off.registry.metrics() == []

    def test_maybe_span_shares_null_context(self):
        assert maybe_span(None, "a") is maybe_span(None, "b")
        telemetry = Telemetry()
        with maybe_span(telemetry, "real", op="x") as sid:
            assert sid == current_span_id()
        assert telemetry.tracer.by_name("real")[0].attrs == {"op": "x"}
