"""Focused tests for scheduler priorities and remaining edges."""

import numpy as np
import pytest

from repro.runtime import (
    build_dag,
    cholesky_tasks,
    panel_priorities,
    upward_ranks,
)


class TestUpwardRanks:
    def test_source_has_maximal_rank(self):
        """POTRF(0) heads the longest chain: maximal upward rank."""
        tasks = list(cholesky_tasks(5))
        dag = build_dag(tasks)
        durations = {t.uid: 1.0 for t in tasks}
        ranks = upward_ranks(dag, durations)
        assert ranks[tasks[0].uid] == max(ranks.values())

    def test_sinks_have_own_duration(self):
        tasks = list(cholesky_tasks(4))
        dag = build_dag(tasks)
        durations = {t.uid: 2.0 for t in tasks}
        ranks = upward_ranks(dag, durations)
        sinks = [u for u in dag.nodes if dag.out_degree(u) == 0]
        assert sinks
        for s in sinks:
            assert ranks[s] == pytest.approx(2.0)

    def test_rank_exceeds_successors(self):
        tasks = list(cholesky_tasks(5))
        dag = build_dag(tasks)
        durations = {t.uid: 1.0 + 0.1 * (t.uid % 3) for t in tasks}
        ranks = upward_ranks(dag, durations)
        for u, v in dag.edges:
            assert ranks[u] > ranks[v]

    def test_equals_critical_path_at_source(self):
        from repro.runtime import critical_path_length

        tasks = list(cholesky_tasks(6))
        dag = build_dag(tasks)
        durations = {t.uid: float(1 + t.uid % 4) for t in tasks}
        ranks = upward_ranks(dag, durations)
        assert max(ranks.values()) == pytest.approx(
            critical_path_length(dag, durations)
        )


class TestPanelPriorities:
    def test_earlier_panels_preferred(self):
        tasks = list(cholesky_tasks(4))
        dag = build_dag(tasks)
        prio = panel_priorities(dag)
        k0 = [t for t in tasks if t.k == 0]
        k2 = [t for t in tasks if t.k == 2]
        assert min(prio[t.uid] for t in k0) > max(prio[t.uid] for t in k2)

    def test_potrf_beats_gemm_within_panel(self):
        tasks = list(cholesky_tasks(4))
        dag = build_dag(tasks)
        prio = panel_priorities(dag)
        potrf0 = next(t for t in tasks if t.op == "potrf" and t.k == 0)
        gemm0 = next(t for t in tasks if t.op == "gemm" and t.k == 0)
        assert prio[potrf0.uid] > prio[gemm0.uid]


class TestEnergyPrecisionScaling:
    def test_joule_per_flop_halves_per_step(self):
        from repro.perfmodel import A64FX_ENERGY
        from repro.tile import Precision

        j64 = A64FX_ENERGY.joule_per_flop(Precision.FP64)
        j32 = A64FX_ENERGY.joule_per_flop(Precision.FP32)
        j16 = A64FX_ENERGY.joule_per_flop(Precision.FP16)
        assert j32 == pytest.approx(j64 / 2)
        assert j16 == pytest.approx(j64 / 4)


class TestGneitingMargins:
    def test_temporal_margin_decreases(self, gneiting):
        theta = np.array([1.0, 0.5, 0.8, 0.7, 0.6, 0.4])
        u = np.linspace(0, 5, 20)
        margin = gneiting.temporal_margin(theta, u)
        assert margin[0] == pytest.approx(1.0)
        assert np.all(np.diff(margin) <= 1e-12)


class TestLikelihoodResultFloat:
    def test_float_conversion(self, matern, theta_matern, locations_200):
        from repro.core import loglikelihood

        res = loglikelihood(
            matern, theta_matern, locations_200, np.zeros(200) + 0.5,
            tile_size=40, nugget=1e-8,
        )
        assert float(res) == res.value
