"""Tests for the wire-format model and execution traces."""

import pytest

from repro.runtime import conversion_count, plan_wire_bytes, tile_wire_bytes
from repro.runtime.trace import ExecutionTrace, TaskRecord
from repro.tile import Precision, TileLayout
from repro.tile.decisions import TilePlan


class TestWireBytes:
    def test_dense_fp64(self):
        lay = TileLayout(100, 20)
        assert tile_wire_bytes(lay, (1, 0), Precision.FP64) == 20 * 20 * 8

    def test_fp16_quarter(self):
        lay = TileLayout(100, 20)
        full = tile_wire_bytes(lay, (1, 0), Precision.FP64)
        half = tile_wire_bytes(lay, (1, 0), Precision.FP16)
        assert half * 4 == full

    def test_low_rank(self):
        lay = TileLayout(100, 20)
        nbytes = tile_wire_bytes(lay, (2, 0), Precision.FP32, low_rank=True, rank=3)
        assert nbytes == 4 * 3 * 40

    def test_rhs_block(self):
        lay = TileLayout(100, 20)
        assert tile_wire_bytes(lay, (1, -1), Precision.FP64) == 8 * 20

    def test_ragged_tile(self):
        lay = TileLayout(50, 20)  # last block 10
        assert tile_wire_bytes(lay, (2, 0), Precision.FP64) == 10 * 20 * 8

    def test_plan_wire_bytes(self):
        lay = TileLayout(60, 20)
        precisions = {k: Precision.FP64 for k in lay.lower_tiles()}
        precisions[(2, 0)] = Precision.FP32
        use_lr = {k: False for k in lay.lower_tiles()}
        use_lr[(2, 0)] = True
        plan = TilePlan(lay, precisions, use_lr, meta={"ranks": {(2, 0): 4}})
        assert plan_wire_bytes(plan, (2, 0)) == 4 * 4 * 40
        assert plan_wire_bytes(plan, (1, 0)) == 8 * 400


class TestConversion:
    def test_same_precision_no_conversion(self):
        assert conversion_count(Precision.FP32, Precision.FP32) == 0

    def test_cross_precision(self):
        assert conversion_count(Precision.FP16, Precision.FP64) == 1


class TestExecutionTrace:
    def _trace(self):
        tr = ExecutionTrace(nodes=2, cores_per_node=1)
        tr.add(TaskRecord(0, "potrf", 0, 0, 0.0, 1.0, flops=10.0))
        tr.add(TaskRecord(1, "trsm", 1, 0, 1.0, 3.0, flops=20.0, comm_bytes=5.0))
        tr.add(TaskRecord(2, "gemm", 0, 0, 3.0, 4.0, flops=30.0, conversions=1))
        return tr

    def test_makespan(self):
        assert self._trace().makespan == 4.0

    def test_totals(self):
        tr = self._trace()
        assert tr.total_flops == 60.0
        assert tr.total_comm_bytes == 5.0
        assert tr.total_conversions == 1

    def test_busy_by_node(self):
        busy = self._trace().busy_time_by_node()
        assert busy[0] == pytest.approx(2.0)
        assert busy[1] == pytest.approx(2.0)

    def test_load_imbalance_balanced(self):
        assert self._trace().load_imbalance() == pytest.approx(1.0)

    def test_load_imbalance_skewed(self):
        tr = ExecutionTrace(nodes=2, cores_per_node=1)
        tr.add(TaskRecord(0, "gemm", 0, 0, 0.0, 4.0))
        assert tr.load_imbalance() == pytest.approx(2.0)

    def test_time_by_op(self):
        by_op = self._trace().time_by_op()
        assert by_op == {"potrf": 1.0, "trsm": 2.0, "gemm": 1.0}

    def test_parallel_efficiency(self):
        tr = self._trace()
        assert tr.parallel_efficiency() == pytest.approx(4.0 / 8.0)

    def test_empty_trace(self):
        tr = ExecutionTrace()
        assert tr.makespan == 0.0
        assert tr.load_imbalance() == 1.0
        assert tr.sustained_flops() == 0.0
