"""Tests for the trace Gantt renderer and utilization profile."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.runtime import render_gantt, utilization_profile
from repro.runtime.trace import ExecutionTrace, TaskRecord


def small_trace():
    tr = ExecutionTrace(nodes=2, cores_per_node=1)
    tr.add(TaskRecord(0, "potrf", 0, 0, 0.0, 1.0))
    tr.add(TaskRecord(1, "trsm", 1, 0, 1.0, 2.0))
    tr.add(TaskRecord(2, "gemm", 0, 0, 2.0, 4.0))
    return tr


class TestGantt:
    def test_renders_rows_per_node(self):
        out = render_gantt(small_trace(), width=8)
        lines = out.splitlines()
        assert len(lines) == 3  # header + 2 nodes
        assert lines[1].startswith("n00")
        assert lines[2].startswith("n01")

    def test_glyphs_placed(self):
        out = render_gantt(small_trace(), width=8)
        node0 = out.splitlines()[1]
        assert "P" in node0 and "G" in node0
        node1 = out.splitlines()[2]
        assert "T" in node1

    def test_idle_is_dot(self):
        out = render_gantt(small_trace(), width=8)
        node1 = out.splitlines()[2]
        assert "." in node1

    def test_empty_trace(self):
        assert render_gantt(ExecutionTrace()) == "(empty trace)"

    def test_max_nodes_elision(self):
        tr = ExecutionTrace(nodes=40, cores_per_node=1)
        tr.add(TaskRecord(0, "gemm", 0, 0, 0.0, 1.0))
        out = render_gantt(tr, width=8, max_nodes=4)
        assert "more nodes" in out

    def test_bad_width(self):
        with pytest.raises(ShapeError):
            render_gantt(small_trace(), width=1)

    def test_real_simulation_render(self):
        from repro.runtime import SimConfig, cholesky_tasks, simulate_tasks
        from repro.tile import TileLayout
        from repro.tile.decisions import TilePlan
        from repro.tile.precision import Precision

        layout = TileLayout(160, 32)
        plan = TilePlan(
            layout,
            {k: Precision.FP64 for k in layout.lower_tiles()},
            {k: False for k in layout.lower_tiles()},
        )
        tasks = list(cholesky_tasks(5))
        trace = simulate_tasks(tasks, layout, plan, SimConfig(nodes=2))
        out = render_gantt(trace, width=40)
        assert "P" in out  # a POTRF appears somewhere


class TestUtilization:
    def test_sums_to_busy_fraction(self):
        tr = small_trace()
        prof = utilization_profile(tr, buckets=4)
        # Total busy time 4.0 over capacity 2 * 4.0 = 8.0.
        assert prof.mean() == pytest.approx(0.5)

    def test_bounded_by_one(self):
        prof = utilization_profile(small_trace(), buckets=10)
        assert np.all(prof <= 1.0 + 1e-12)
        assert np.all(prof >= 0.0)

    def test_fill_and_drain_shape(self):
        """A real Cholesky run: utilization in the middle exceeds the
        tail (drain phase)."""
        from repro.runtime import SimConfig, cholesky_tasks, simulate_tasks
        from repro.tile import TileLayout
        from repro.tile.decisions import TilePlan
        from repro.tile.precision import Precision

        nt = 10
        layout = TileLayout(nt * 32, 32)
        plan = TilePlan(
            layout,
            {k: Precision.FP64 for k in layout.lower_tiles()},
            {k: False for k in layout.lower_tiles()},
        )
        tasks = list(cholesky_tasks(nt))
        trace = simulate_tasks(
            tasks, layout, plan, SimConfig(nodes=2, cores_per_node=4)
        )
        prof = utilization_profile(trace, buckets=10)
        assert prof[3:6].mean() > prof[-1]

    def test_empty(self):
        prof = utilization_profile(ExecutionTrace(), buckets=5)
        np.testing.assert_array_equal(prof, np.zeros(5))

    def test_bad_buckets(self):
        with pytest.raises(ShapeError):
            utilization_profile(small_trace(), buckets=0)
