"""Failure-injection tests: the stack must fail loudly and precisely,
never silently corrupt results."""

import numpy as np
import pytest

from repro.exceptions import (
    NotPositiveDefiniteError,
    ParameterError,
    ReproError,
    SchedulingError,
    ShapeError,
)
from repro.kernels import MaternKernel
from repro.tile import TileMatrix, tile_cholesky


class TestBadInputsKernels:
    def test_nan_locations(self, matern, theta_matern):
        with pytest.raises(ShapeError):
            matern(theta_matern, np.array([[0.0, np.nan]]))

    def test_inf_theta(self, matern, locations_200):
        with pytest.raises(ParameterError):
            matern(np.array([np.inf, 0.1, 0.5]), locations_200[:5])

    def test_nan_theta(self, matern, locations_200):
        with pytest.raises(ParameterError):
            matern(np.array([np.nan, 0.1, 0.5]), locations_200[:5])

    def test_zero_range(self, matern, locations_200):
        with pytest.raises(ParameterError):
            matern(np.array([1.0, 0.0, 0.5]), locations_200[:5])


class TestIndefiniteMatrices:
    def test_cholesky_reports_failing_tile(self):
        a = np.diag([1.0, 1.0, 1.0, -5.0, 1.0, 1.0])
        tm = TileMatrix.from_dense(a, 2)
        with pytest.raises(NotPositiveDefiniteError) as exc:
            tile_cholesky(tm)
        assert exc.value.tile_index == (1, 1)

    def test_duplicate_locations_fail_gracefully(self, matern, theta_matern):
        """Exact duplicates without a nugget make Sigma singular; the
        pipeline must raise, not return garbage."""
        from repro.core import loglikelihood

        x = np.vstack([np.full((2, 2), 0.5), np.random.default_rng(0).uniform(size=(30, 2))])
        z = np.zeros(32)
        with pytest.raises((NotPositiveDefiniteError, ReproError)):
            loglikelihood(matern, theta_matern, x, z, tile_size=8)

    def test_mle_survives_indefinite_regions(self, rng):
        """The optimizer treats indefinite trial points as rejected
        steps and still returns a result."""
        from repro.core import fit_mle
        from repro.data import sample_gaussian_field

        kern = MaternKernel()
        x = rng.uniform(size=(80, 2))
        theta = np.array([1.0, 0.1, 0.5])
        z = sample_gaussian_field(kern, theta, x, seed=1)
        res = fit_mle(kern, x, z, tile_size=20, theta0=theta, max_iter=20)
        assert np.isfinite(res.loglik)


class TestBadObservations:
    def test_nan_observations_poison_loglik(self, matern, theta_matern, locations_200):
        """NaN data must be rejected at the API boundary with a clear
        error naming the offending argument — never a silent number."""
        from repro.core import loglikelihood

        z = np.zeros(200)
        z[7] = np.nan
        with pytest.raises(ValueError, match="'z'.*flat index 7"):
            loglikelihood(
                matern, theta_matern, locations_200, z, tile_size=40,
                nugget=1e-8,
            )

    def test_wrong_length(self, matern, theta_matern, locations_200):
        from repro.core import loglikelihood

        with pytest.raises(ShapeError):
            loglikelihood(matern, theta_matern, locations_200, np.zeros(100),
                          tile_size=40)


class TestRuntimeMisuse:
    def test_simulator_rejects_cyclic_input(self):
        """A corrupted DAG (cycle) must be detected."""
        import networkx as nx

        from repro.runtime import SimConfig, Task, simulate_tasks
        from repro.tile import TileLayout
        from repro.tile.decisions import TilePlan
        from repro.tile.precision import Precision

        layout = TileLayout(64, 32)
        plan = TilePlan(
            layout,
            {k: Precision.FP64 for k in layout.lower_tiles()},
            {k: False for k in layout.lower_tiles()},
        )
        tasks = [
            Task(0, "potrf", 0, output=(0, 0)),
            Task(1, "trsm", 0, output=(1, 0), inputs=((0, 0),)),
        ]
        dag = nx.DiGraph()
        dag.add_node(0, task=tasks[0])
        dag.add_node(1, task=tasks[1])
        dag.add_edge(0, 1)
        dag.add_edge(1, 0)  # cycle
        with pytest.raises(SchedulingError):
            simulate_tasks(tasks, layout, plan, SimConfig(nodes=1), dag=dag)

    def test_engine_rejects_misordered_stream(self, matern, theta_matern, locations_200):
        """Executing GEMM before its panel's TRSM corrupts dataflow;
        the engine trusts the stream, so the *dag builder* is the
        guard — verify the misordered stream fails dependence checks."""
        from repro.runtime import build_dag, cholesky_tasks, validate_schedule

        tasks = list(cholesky_tasks(3))
        dag = build_dag(tasks)
        # Everything starts at 0 with unit durations: every edge with a
        # real predecessor duration is violated.
        start = {t.uid: 0.0 for t in tasks}
        end = {t.uid: 1.0 for t in tasks}
        with pytest.raises(SchedulingError):
            validate_schedule(dag, start, end)


class TestConfigMisuse:
    def test_variant_with_bad_band(self, matern, theta_matern, locations_200):
        from repro.exceptions import ConfigurationError
        from repro.tile import build_planned_covariance

        with pytest.raises(ConfigurationError):
            build_planned_covariance(
                matern, theta_matern, locations_200, 40,
                use_tlr=True, band_size=-3,
            )

    def test_model_rejects_wrong_dim_predictions(self):
        from repro import ExaGeoStatModel
        from repro.data import soil_moisture_surrogate

        data = soil_moisture_surrogate(n_train=120, n_test=20, seed=5)
        model = ExaGeoStatModel(tile_size=30)
        model.set_params(data.theta_true, data.x_train, data.z_train)
        with pytest.raises(ShapeError):
            model.predict(np.zeros((5, 3)))
