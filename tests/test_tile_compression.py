"""Unit + property tests for low-rank compression primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CompressionError
from repro.tile import DenseTile, Precision
from repro.tile.compression import (
    compress_block,
    compress_tile,
    lr_add,
    rank_of_block,
    recompress,
    truncated_svd,
)


def low_rank_matrix(rng, m=30, n=24, rank=5, scale=1.0):
    return scale * (rng.standard_normal((m, rank)) @ rng.standard_normal((rank, n)))


class TestTruncatedSVD:
    def test_error_within_tolerance(self, rng):
        a = rng.standard_normal((30, 30))
        tol = 0.5 * np.linalg.norm(a)
        u, v, err = truncated_svd(a, tol)
        assert np.linalg.norm(a - u @ v.T) <= tol + 1e-12
        assert err <= tol

    def test_exact_rank_recovery(self, rng):
        a = low_rank_matrix(rng, rank=4)
        u, v, err = truncated_svd(a, 1e-10)
        assert u.shape[1] == 4
        assert err < 1e-10

    def test_zero_matrix_rank_zero(self):
        u, v, err = truncated_svd(np.zeros((8, 6)), 1e-12)
        assert u.shape == (8, 0) and v.shape == (6, 0)
        assert err == 0.0

    def test_max_rank_violation_raises(self, rng):
        a = rng.standard_normal((20, 20))
        with pytest.raises(CompressionError):
            truncated_svd(a, 1e-14, max_rank=2)

    def test_rank_monotone_in_tolerance(self, rng):
        a = rng.standard_normal((25, 25))
        norm = np.linalg.norm(a)
        ranks = [
            truncated_svd(a, f * norm)[0].shape[1]
            for f in (1e-12, 1e-6, 1e-2, 0.5)
        ]
        assert ranks == sorted(ranks, reverse=True)

    @given(rank=st.integers(0, 8), tol_factor=st.floats(1e-10, 0.3))
    @settings(max_examples=25, deadline=None)
    def test_property_error_bound(self, rank, tol_factor):
        rng = np.random.default_rng(rank * 1000 + 1)
        a = (
            low_rank_matrix(rng, rank=rank)
            if rank
            else np.zeros((30, 24))
        )
        a = a + 1e-6 * rng.standard_normal(a.shape)
        tol = tol_factor * max(np.linalg.norm(a), 1e-30)
        u, v, err = truncated_svd(a, tol)
        assert np.linalg.norm(a - u @ v.T) <= tol * (1 + 1e-9)


class TestRankOfBlock:
    def test_matches_truncated_svd(self, rng):
        a = rng.standard_normal((20, 20))
        tol = 0.1 * np.linalg.norm(a)
        u, _, _ = truncated_svd(a, tol)
        assert rank_of_block(a, tol) == u.shape[1]


class TestCompressTile:
    def test_compress_block_returns_lowrank(self, rng):
        a = low_rank_matrix(rng, rank=3)
        t = compress_block(a, 1e-10, precision=Precision.FP32)
        assert t.rank == 3
        assert t.precision is Precision.FP32

    def test_compress_tile_inherits_precision(self, rng):
        dense = DenseTile(low_rank_matrix(rng, rank=2), Precision.FP32)
        lr = compress_tile(dense, 1e-8)
        assert lr.precision is Precision.FP32


class TestRecompress:
    def test_reduces_rank_of_padded_factors(self, rng):
        a = low_rank_matrix(rng, rank=3)
        u, v, _ = truncated_svd(a, 1e-12)
        # Pad with redundant columns.
        u_pad = np.hstack([u, u[:, :2]])
        v_pad = np.hstack([v, v[:, :2]])
        nu, nv = recompress(u_pad, v_pad, 1e-10)
        assert nu.shape[1] <= 3 + 1e-9
        np.testing.assert_allclose(nu @ nv.T, u_pad @ v_pad.T, atol=1e-8)

    def test_zero_rank_passthrough(self):
        u = np.zeros((5, 0))
        v = np.zeros((4, 0))
        nu, nv = recompress(u, v, 1e-8)
        assert nu.shape[1] == 0

    def test_error_bound(self, rng):
        u = rng.standard_normal((30, 10))
        v = rng.standard_normal((30, 10))
        a = u @ v.T
        tol = 0.05 * np.linalg.norm(a)
        nu, nv = recompress(u, v, tol)
        assert np.linalg.norm(a - nu @ nv.T) <= tol * (1 + 1e-9)

    def test_max_rank_enforced(self, rng):
        u = rng.standard_normal((20, 10))
        v = rng.standard_normal((20, 10))
        with pytest.raises(CompressionError):
            recompress(u, v, 1e-15, max_rank=2)


class TestLRAdd:
    def test_exact_sum(self, rng):
        a1 = low_rank_matrix(rng, rank=2)
        a2 = low_rank_matrix(rng, rank=3)
        u1, v1, _ = truncated_svd(a1, 1e-12)
        u2, v2, _ = truncated_svd(a2, 1e-12)
        nu, nv = lr_add(u1, v1, u2, v2, 1e-10)
        np.testing.assert_allclose(nu @ nv.T, a1 + a2, atol=1e-8)

    def test_subtraction_via_negation(self, rng):
        a = low_rank_matrix(rng, rank=4)
        u, v, _ = truncated_svd(a, 1e-12)
        nu, nv = lr_add(u, v, -u, v, 1e-10)
        assert nu.shape[1] == 0 or np.linalg.norm(nu @ nv.T) < 1e-8

    def test_rank_capped_by_tolerance(self, rng):
        """Adding correlated updates must not inflate rank."""
        a = low_rank_matrix(rng, rank=3)
        u, v, _ = truncated_svd(a, 1e-12)
        nu, nv = lr_add(u, v, 0.5 * u, v, 1e-10)
        assert nu.shape[1] <= 3

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_property_sum_accuracy(self, seed):
        rng = np.random.default_rng(seed)
        a1 = low_rank_matrix(rng, rank=rng.integers(1, 6))
        a2 = low_rank_matrix(rng, rank=rng.integers(1, 6))
        u1, v1, _ = truncated_svd(a1, 1e-12)
        u2, v2, _ = truncated_svd(a2, 1e-12)
        tol = 1e-8 * np.linalg.norm(a1 + a2)
        nu, nv = lr_add(u1, v1, u2, v2, tol)
        assert np.linalg.norm((a1 + a2) - nu @ nv.T) <= tol * (1 + 1e-6) + 1e-12
