"""Tests for the empirical variogram and the MLE-iteration estimator."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.kernels import MaternKernel
from repro.perfmodel import (
    A64FX,
    PlanProfile,
    estimate_cholesky,
    estimate_mle_iteration,
)
from repro.stats import (
    empirical_variogram,
    theoretical_variogram,
)


class TestEmpiricalVariogram:
    @pytest.fixture(scope="class")
    def field(self):
        from repro.data import sample_gaussian_field

        gen = np.random.default_rng(7)
        x = gen.uniform(size=(300, 2))
        theta = np.array([1.0, 0.15, 0.5])
        fields = sample_gaussian_field(
            MaternKernel(), theta, x, seed=8, size=30
        )
        return x, theta, fields

    def test_matches_theory_when_averaged(self, field):
        """Averaged over 30 replicates, the estimator tracks the
        theoretical curve at short/medium lags."""
        x, theta, fields = field
        gammas = []
        for z in fields:
            ev = empirical_variogram(x, z, n_bins=8)
            gammas.append(ev.gamma)
        mean_gamma = np.mean(gammas, axis=0)
        ev = empirical_variogram(x, fields[0], n_bins=8)
        theo = theoretical_variogram(MaternKernel(), theta, ev.bin_centers)
        mask = ev.valid()
        np.testing.assert_allclose(
            mean_gamma[mask], theo[mask], rtol=0.3, atol=0.05
        )

    def test_monotone_theoretical(self):
        theta = np.array([1.0, 0.2, 0.8])
        h = np.linspace(0.0, 2.0, 30)
        gamma = theoretical_variogram(MaternKernel(), theta, h)
        assert gamma[0] == pytest.approx(0.0, abs=1e-12)
        assert np.all(np.diff(gamma) >= -1e-12)
        assert gamma[-1] <= 1.0 + 1e-12

    def test_counts_sum_to_kept_pairs(self, field):
        x, _, fields = field
        ev = empirical_variogram(x, fields[0], n_bins=6, max_distance=0.5)
        d = np.linalg.norm(x[:, None] - x[None, :], axis=-1)
        iu = np.triu_indices(len(x), k=1)
        assert ev.counts.sum() == int(np.sum(d[iu] <= 0.5))

    def test_validation(self, field):
        x, _, fields = field
        with pytest.raises(ShapeError):
            empirical_variogram(x, fields[0][:10])
        with pytest.raises(ShapeError):
            empirical_variogram(x[:1], fields[0][:1])
        with pytest.raises(ShapeError):
            empirical_variogram(x, fields[0], n_bins=0)

    def test_nugget_shows_at_origin(self):
        """A field with a nugget has gamma(0+) near the nugget, not 0."""
        from repro.data import sample_gaussian_field
        from repro.kernels import NuggetKernel

        gen = np.random.default_rng(9)
        x = gen.uniform(size=(400, 2))
        kern = NuggetKernel(MaternKernel())
        theta = np.array([1.0, 0.2, 1.5, 0.5])
        fields = sample_gaussian_field(kern, theta, x, seed=10, size=20)
        first_bins = []
        for z in fields:
            ev = empirical_variogram(x, z, n_bins=20)
            first_bins.append(ev.gamma[0])
        assert np.mean(first_bins) > 0.3  # ~ nugget 0.5, not ~ 0


class TestMLEIterationEstimate:
    def test_factorization_dominates_at_scale(self):
        est = estimate_mle_iteration(
            PlanProfile.dense_fp64(), 1_000_000, 2700, A64FX, 1024
        )
        assert est.factorization_fraction > 0.9
        assert est.total_s > est.factorization.time_s

    def test_components_positive(self):
        est = estimate_mle_iteration(
            PlanProfile.dense_fp64(), 270_000, 2700, A64FX, 64
        )
        assert est.generation_s > 0
        assert est.solve_s > 0

    def test_compression_doubles_generation(self):
        dense = estimate_mle_iteration(
            PlanProfile.dense_fp64(), 270_000, 2700, A64FX, 64,
            compressed=False,
        )
        comp = estimate_mle_iteration(
            PlanProfile.dense_fp64(), 270_000, 2700, A64FX, 64,
            compressed=True,
        )
        assert comp.generation_s == pytest.approx(2 * dense.generation_s)

    def test_consistent_with_cholesky_estimate(self):
        prof = PlanProfile.dense_fp64()
        fact = estimate_cholesky(prof, 500_000, 2700, A64FX, 256)
        it = estimate_mle_iteration(prof, 500_000, 2700, A64FX, 256)
        assert it.factorization.time_s == pytest.approx(fact.time_s)

    def test_generation_scales_quadratically(self):
        prof = PlanProfile.dense_fp64()
        g1 = estimate_mle_iteration(prof, 270_000, 2700, A64FX, 64).generation_s
        g2 = estimate_mle_iteration(prof, 540_000, 2700, A64FX, 64).generation_s
        assert g2 / g1 == pytest.approx(4.0, rel=0.1)
