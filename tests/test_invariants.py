"""Cross-cutting invariants: conservation laws the system must obey
regardless of configuration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import A64FX, PlanProfile, estimate_cholesky, project_classes
from repro.runtime import SimConfig, cholesky_tasks, plan_wire_bytes, simulate_tasks
from repro.tile import Precision, TileLayout
from repro.tile.decisions import TilePlan


def make_plan(nt, tile_size, *, lr_offsets=(), precisions=None):
    layout = TileLayout(nt * tile_size, tile_size)
    prec = {}
    lr = {}
    ranks = {}
    for i, j in layout.lower_tiles():
        off = i - j
        prec[(i, j)] = (
            precisions.get(off, Precision.FP64) if precisions else Precision.FP64
        )
        lr[(i, j)] = off in lr_offsets
        if lr[(i, j)]:
            ranks[(i, j)] = max(2, tile_size // 8)
    return TilePlan(layout, prec, lr, meta={"ranks": ranks})


class TestSimulatorConservation:
    @given(nodes=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=4, deadline=None)
    def test_total_flops_independent_of_nodes(self, nodes):
        """Work is conserved: the modeled flop total must not depend on
        the machine partition."""
        plan = make_plan(6, 32, lr_offsets=(3, 4, 5))
        tasks = list(cholesky_tasks(6))
        trace = simulate_tasks(
            tasks, plan.layout, plan, SimConfig(nodes=nodes)
        )
        reference = simulate_tasks(
            tasks, plan.layout, plan, SimConfig(nodes=1)
        )
        assert trace.total_flops == pytest.approx(reference.total_flops)

    def test_task_count_conserved(self):
        plan = make_plan(5, 32)
        tasks = list(cholesky_tasks(5))
        for nodes in (1, 3):
            trace = simulate_tasks(
                tasks, plan.layout, plan, SimConfig(nodes=nodes)
            )
            assert len(trace.records) == len(tasks)

    def test_busy_time_equals_sum_durations(self):
        plan = make_plan(5, 32)
        tasks = list(cholesky_tasks(5))
        trace = simulate_tasks(tasks, plan.layout, plan, SimConfig(nodes=2))
        busy = sum(trace.busy_time_by_node().values())
        assert busy == pytest.approx(sum(r.duration for r in trace.records))


class TestWireBytesInvariants:
    def test_never_exceeds_dense_fp64(self):
        plan = make_plan(
            6, 32, lr_offsets=(2, 3, 4, 5),
            precisions={0: Precision.FP64, 1: Precision.FP32,
                        2: Precision.FP32, 3: Precision.FP16,
                        4: Precision.FP16, 5: Precision.FP16},
        )
        for key in plan.layout.lower_tiles():
            dense64 = 8 * plan.layout.tile_shape(*key)[0] * (
                plan.layout.tile_shape(*key)[1]
            )
            assert plan_wire_bytes(plan, key) <= dense64

    def test_lr_bytes_scale_with_rank(self):
        base = make_plan(4, 32, lr_offsets=(2, 3))
        small = plan_wire_bytes(base, (3, 0))
        base.meta["ranks"][(3, 0)] *= 2
        assert plan_wire_bytes(base, (3, 0)) == 2 * small


class TestProjectionInvariants:
    @given(nt=st.sampled_from([10, 50, 333]))
    @settings(max_examples=3, deadline=None)
    def test_fractions_normalized_after_projection(self, nt):
        profile = PlanProfile.dense_fp64()
        fr, ranks = project_classes(profile, nt, 800, A64FX, band_size=2)
        np.testing.assert_allclose(fr.sum(axis=1), 1.0, atol=1e-9)
        assert ranks.shape == (nt,)

    def test_estimator_time_monotone_in_matrix(self):
        profile = PlanProfile.dense_fp64()
        times = [
            estimate_cholesky(profile, n, 800, A64FX, nodes=256).time_s
            for n in (200_000, 400_000, 800_000)
        ]
        assert times == sorted(times)

    def test_estimator_storage_monotone_in_matrix(self):
        profile = PlanProfile.dense_fp64()
        st_ = [
            estimate_cholesky(profile, n, 800, A64FX, nodes=256).storage_bytes
            for n in (200_000, 400_000)
        ]
        assert st_[1] > st_[0]

    def test_band_size_only_increases_time_for_low_rank(self):
        """Growing the forced-dense band cannot make a dense-only
        profile slower (it is a no-op there)."""
        profile = PlanProfile.dense_fp64()
        t1 = estimate_cholesky(profile, 400_000, 800, A64FX, nodes=64,
                               band_size=1).time_s
        t5 = estimate_cholesky(profile, 400_000, 800, A64FX, nodes=64,
                               band_size=5).time_s
        assert t1 == pytest.approx(t5)


class TestPrecisionLadderInvariant:
    @given(
        norms=st.lists(st.floats(1e-12, 1e3), min_size=3, max_size=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_demotion_monotone_in_norm(self, norms):
        """Among off-diagonal tiles, a smaller norm never gets a higher
        precision than a larger norm."""
        from repro.tile import frobenius_precision_map

        keys = [(i + 1, 0) for i in range(len(norms))]
        tile_norms = dict(zip(keys, norms))
        tile_norms[(0, 0)] = 1.0
        pm = frobenius_precision_map(tile_norms, 10.0, len(norms) + 1)
        ordered = sorted(keys, key=lambda k: tile_norms[k])
        precisions = [int(pm[k]) for k in ordered]
        assert precisions == sorted(precisions)
