"""Tests for the MLE driver and the ExaGeoStatModel API."""

import numpy as np
import pytest

from repro import ExaGeoStatModel
from repro.core import fit_mle
from repro.data import simulate_matern_dataset, soil_moisture_surrogate
from repro.exceptions import ReproError, ShapeError


@pytest.fixture(scope="module")
def dataset():
    return simulate_matern_dataset(220, "medium", seed=99)


class TestFitMLE:
    def test_recovers_parameters_roughly(self, dataset):
        res = fit_mle(
            dataset.kernel, dataset.x, dataset.z,
            tile_size=40, theta0=dataset.theta_true, max_iter=60,
        )
        # Single realization at n=220: generous tolerances.
        assert res.theta[0] == pytest.approx(dataset.theta_true[0], rel=1.0)
        assert res.theta[1] == pytest.approx(dataset.theta_true[1], rel=1.0)
        assert res.loglik > -1e6

    def test_improves_on_initial_guess(self, dataset):
        from repro.core import loglikelihood

        theta0 = np.array([2.0, 0.05, 1.0])
        initial = loglikelihood(
            dataset.kernel, theta0, dataset.x, dataset.z, tile_size=40
        ).value
        res = fit_mle(
            dataset.kernel, dataset.x, dataset.z,
            tile_size=40, theta0=theta0, max_iter=50,
        )
        assert res.loglik >= initial

    def test_variants_agree(self, dataset):
        """Table I's core claim at laptop scale: the three variants land
        on nearly the same estimates."""
        results = {
            v: fit_mle(
                dataset.kernel, dataset.x, dataset.z,
                tile_size=40, theta0=dataset.theta_true, max_iter=40,
                variant=v,
            )
            for v in ("dense-fp64", "mp-dense", "mp-dense-tlr")
        }
        base = results["dense-fp64"].theta
        for name, res in results.items():
            np.testing.assert_allclose(res.theta, base, rtol=0.2)

    def test_history_monotone_nonincreasing_best(self, dataset):
        res = fit_mle(
            dataset.kernel, dataset.x, dataset.z,
            tile_size=40, theta0=dataset.theta_true, max_iter=30,
        )
        # history records the best loglik per iteration: non-decreasing.
        hist = res.history
        assert all(b >= a - 1e-9 for a, b in zip(hist, hist[1:]))

    def test_counts_failed_evaluations(self, dataset):
        res = fit_mle(
            dataset.kernel, dataset.x, dataset.z,
            tile_size=40, theta0=dataset.theta_true, max_iter=10,
        )
        assert res.failed_evaluations >= 0
        assert res.nfev > 0


class TestExaGeoStatModel:
    def test_fit_predict_workflow(self):
        data = soil_moisture_surrogate(n_train=300, n_test=40, seed=2)
        model = ExaGeoStatModel(kernel="matern", variant="mp-dense-tlr",
                                tile_size=40)
        model.fit(data.x_train, data.z_train,
                  theta0=data.theta_true, max_iter=30)
        assert model.fitted
        pred = model.predict(data.x_test, return_uncertainty=True)
        assert pred.mean.shape == (40,)
        assert np.all(pred.variance >= -1e-9)
        mspe = model.score(data.x_test, data.z_test)
        assert mspe < np.mean(data.z_test**2)

    def test_summary_layout(self):
        data = soil_moisture_surrogate(n_train=250, n_test=30, seed=3)
        model = ExaGeoStatModel(tile_size=40)
        model.fit(data.x_train, data.z_train,
                  theta0=data.theta_true, max_iter=20)
        s = model.summary()
        assert {"variant", "loglik", "variance", "range", "smoothness"} <= set(s)
        assert s["n"] == 250

    def test_predict_before_fit_raises(self):
        model = ExaGeoStatModel()
        with pytest.raises(ReproError):
            model.predict(np.zeros((3, 2)))

    def test_set_params_skips_fitting(self):
        data = soil_moisture_surrogate(n_train=200, n_test=30, seed=4)
        model = ExaGeoStatModel(tile_size=40)
        model.set_params(data.theta_true, data.x_train, data.z_train)
        mspe = model.score(data.x_test, data.z_test)
        assert mspe < np.mean(data.z_test**2)

    def test_unknown_kernel_alias(self):
        with pytest.raises(ShapeError):
            ExaGeoStatModel(kernel="rbf-magic")

    def test_ordering_is_internal(self):
        """Shuffled input produces the same predictions (the model
        reorders internally)."""
        data = soil_moisture_surrogate(n_train=200, n_test=20, seed=6)
        gen = np.random.default_rng(0)
        perm = gen.permutation(200)
        m1 = ExaGeoStatModel(tile_size=40)
        m1.set_params(data.theta_true, data.x_train, data.z_train)
        m2 = ExaGeoStatModel(tile_size=40)
        m2.set_params(data.theta_true, data.x_train[perm], data.z_train[perm])
        p1 = m1.predict(data.x_test).mean
        p2 = m2.predict(data.x_test).mean
        np.testing.assert_allclose(p1, p2, atol=1e-8)

    def test_mismatched_xy_lengths(self):
        model = ExaGeoStatModel()
        with pytest.raises(ShapeError):
            model.fit(np.zeros((5, 2)), np.zeros(4))

    def test_space_time_model(self):
        from repro.data import et_surrogate

        data = et_surrogate(n_space=40, n_slots=6, n_test=40, seed=8)
        model = ExaGeoStatModel(kernel="gneiting", variant="mp-dense",
                                tile_size=40, nugget=1e-8)
        model.set_params(data.theta_true, data.x_train, data.z_train)
        mspe = model.score(data.x_test, data.z_test)
        assert mspe < np.mean(data.z_test**2)
