"""Tests for the Gaussian log-likelihood (Eq. 1)."""

import numpy as np
import pytest

from repro.core import loglikelihood, loglikelihood_dense_reference
from repro.exceptions import ShapeError


@pytest.fixture(scope="module")
def observations(matern, theta_matern, locations_200):
    sigma = matern.covariance_matrix(theta_matern, locations_200, nugget=1e-8)
    gen = np.random.default_rng(17)
    z = np.linalg.cholesky(sigma) @ gen.standard_normal(200)
    return z


class TestAgainstReference:
    def test_dense_fp64_matches_numpy(
        self, matern, theta_matern, locations_200, observations
    ):
        tiled = loglikelihood(
            matern, theta_matern, locations_200, observations,
            tile_size=40, variant="dense-fp64", nugget=1e-8,
        )
        ref = loglikelihood_dense_reference(
            matern, theta_matern, locations_200, observations, nugget=1e-8
        )
        assert tiled.value == pytest.approx(ref, abs=1e-6)

    def test_mp_dense_close(self, matern, theta_matern, locations_200, observations):
        tiled = loglikelihood(
            matern, theta_matern, locations_200, observations,
            tile_size=40, variant="mp-dense", nugget=1e-8,
        )
        ref = loglikelihood_dense_reference(
            matern, theta_matern, locations_200, observations, nugget=1e-8
        )
        assert tiled.value == pytest.approx(ref, abs=0.05)

    def test_mp_tlr_close(self, matern, theta_matern, locations_200, observations):
        tiled = loglikelihood(
            matern, theta_matern, locations_200, observations,
            tile_size=40, variant="mp-dense-tlr", nugget=1e-8,
        )
        ref = loglikelihood_dense_reference(
            matern, theta_matern, locations_200, observations, nugget=1e-8
        )
        assert tiled.value == pytest.approx(ref, abs=0.05)


class TestResultPieces:
    def test_decomposition_consistent(
        self, matern, theta_matern, locations_200, observations
    ):
        res = loglikelihood(
            matern, theta_matern, locations_200, observations,
            tile_size=40, nugget=1e-8,
        )
        n = 200
        reassembled = (
            -0.5 * n * np.log(2 * np.pi) - 0.5 * res.logdet - 0.5 * res.quadratic
        )
        assert res.value == pytest.approx(reassembled)
        assert res.n == n

    def test_quadratic_positive(
        self, matern, theta_matern, locations_200, observations
    ):
        res = loglikelihood(
            matern, theta_matern, locations_200, observations,
            tile_size=40, nugget=1e-8,
        )
        assert res.quadratic > 0

    def test_factor_reusable(self, matern, theta_matern, locations_200, observations):
        from repro.tile import forward_solve

        res = loglikelihood(
            matern, theta_matern, locations_200, observations,
            tile_size=40, nugget=1e-8,
        )
        y = forward_solve(res.factor, observations)
        assert float(y @ y) == pytest.approx(res.quadratic, rel=1e-10)

    def test_true_theta_beats_far_theta(
        self, matern, theta_matern, locations_200, observations
    ):
        at_truth = loglikelihood(
            matern, theta_matern, locations_200, observations,
            tile_size=40, nugget=1e-8,
        )
        far = loglikelihood(
            matern, np.array([5.0, 0.9, 2.0]), locations_200, observations,
            tile_size=40, nugget=1e-8,
        )
        assert at_truth.value > far.value

    def test_length_mismatch(self, matern, theta_matern, locations_200):
        with pytest.raises(ShapeError):
            loglikelihood(
                matern, theta_matern, locations_200, np.zeros(7), tile_size=40
            )

    def test_variant_recorded(self, matern, theta_matern, locations_200, observations):
        res = loglikelihood(
            matern, theta_matern, locations_200, observations,
            tile_size=40, variant="mp-dense", nugget=1e-8,
        )
        assert res.variant == "mp-dense"
