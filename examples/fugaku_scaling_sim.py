"""Fugaku-scale scaling study (paper Figs. 7, 10, 11), simulated.

Pipeline:

1. build a real adaptive tile plan on a laptop-scale covariance and
   measure its offset-class profile;
2. execute the *actual* task DAG of a moderate problem on a simulated
   multi-node A64FX machine (discrete-event simulation with
   communication and on-demand precision conversions);
3. project the profile to the paper's matrix sizes and node counts
   with the aggregate per-step estimator, printing a Fig. 10-style
   table.

Run:  python examples/fugaku_scaling_sim.py
"""

import numpy as np

from repro.kernels import MaternKernel
from repro.ordering import order_points
from repro.perfmodel import A64FX, PlanProfile, estimate_cholesky
from repro.runtime import SimConfig, cholesky_tasks, simulate_tasks
from repro.stats import format_table
from repro.tile import build_planned_covariance


def main() -> None:
    # --- 1: measure a real adaptive plan ---------------------------------
    gen = np.random.default_rng(7)
    x = gen.uniform(size=(1500, 2))
    x = x[order_points(x, "morton")]
    kern = MaternKernel()
    theta = np.array([1.0, 0.03, 0.5])  # weak correlation (Fig. 10 WC)
    matrix, report = build_planned_covariance(
        kern, theta, x, 60, nugget=1e-8,
        use_mp=True, use_tlr=True, band_size=1,
    )
    plan = report.plan
    print(f"measured plan ({plan.nt}x{plan.nt} tiles): {plan.counts()}")
    profile = PlanProfile.from_plan(plan, label="weak")

    # --- 2: discrete-event simulation of the real DAG ---------------------
    tasks = list(cholesky_tasks(plan.nt))
    for nodes in (1, 4, 16):
        trace = simulate_tasks(
            tasks, plan.layout, plan, SimConfig(nodes=nodes, machine=A64FX)
        )
        s = trace.summary()
        print(
            f"DAG simulation, {nodes:2d} nodes: makespan "
            f"{s['makespan_s'] * 1e3:8.2f} ms, parallel efficiency "
            f"{s['parallel_efficiency']:.2f}, comm "
            f"{s['comm_gbytes'] * 1e3:.2f} MB, "
            f"{int(s['conversions'])} precision conversions"
        )

    # --- 3: project to Fugaku scale (Fig. 10) ------------------------------
    n = 9_000_000
    rows = []
    for nodes in (2048, 4096, 8192, 16384):
        dense = estimate_cholesky(
            PlanProfile.dense_fp64(), n, 2700, A64FX, nodes=nodes
        )
        tlr = estimate_cholesky(
            profile, n, 1350, A64FX, nodes=nodes, band_size=2
        )
        rows.append([
            nodes, dense.time_s, dense.sustained_pflops,
            tlr.time_s, dense.time_s / tlr.time_s, tlr.memory_reduction,
        ])
    print()
    print(format_table(
        ["nodes", "dense_s", "dense_Pflops", "mp_tlr_s", "speedup",
         "mem_reduction"],
        rows,
        title=f"Fig. 10-style projection, Matérn 2D WC, N={n:,}",
        float_fmt="{:.3g}",
    ))
    print(
        "\nThe paper reports up to 12x at 16K nodes; our conservative "
        "TLR-kernel efficiency (calibrated to Fig. 5's crossover) lands "
        "in the same band — see EXPERIMENTS.md."
    )


if __name__ == "__main__":
    main()
