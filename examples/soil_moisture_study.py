"""Soil-moisture study (paper Table I at laptop scale).

Reproduces the Table I workflow end-to-end on the Mississippi-basin
surrogate: MLE training with the three compute variants, kriging
prediction with uncertainty at held-out locations, MSPE, and interval
coverage — plus a look at the adaptive tile plan the MP+dense/TLR
variant chose.

Run:  python examples/soil_moisture_study.py
"""

from repro import ExaGeoStatModel
from repro.core import loglikelihood
from repro.data import soil_moisture_surrogate
from repro.ordering import order_points
from repro.stats import format_table, interval_coverage, mspe


def main() -> None:
    data = soil_moisture_surrogate(n_train=800, n_test=100, seed=11)
    print(
        f"soil-moisture surrogate: {data.n_train} train / {data.n_test} "
        f"test locations, generating theta = {data.theta_true}"
        " (the paper's Table I dense-FP64 estimates)\n"
    )

    rows = []
    models = {}
    for variant in ("dense-fp64", "mp-dense", "mp-dense-tlr"):
        model = ExaGeoStatModel(kernel="matern", variant=variant, tile_size=80)
        model.fit(data.x_train, data.z_train,
                  theta0=data.theta_true, max_iter=60)
        pred = model.predict(data.x_test, return_uncertainty=True)
        rows.append([
            variant,
            model.theta_[0], model.theta_[1], model.theta_[2],
            model.loglik_,
            mspe(pred.mean, data.z_test),
            interval_coverage(pred.mean, pred.standard_error(), data.z_test),
        ])
        models[variant] = model
    print(format_table(
        ["Approach", "Variance", "Range", "Smoothness",
         "Log-Likelihood", "MSPE", "95% coverage"],
        rows,
        title="Table I reproduction (surrogate scale)",
    ))

    # Inspect the adaptive plan at the fitted parameters.
    perm = order_points(data.x_train, "morton")
    res = loglikelihood(
        data.kernel, models["mp-dense-tlr"].theta_,
        data.x_train[perm], data.z_train[perm],
        tile_size=60, variant="mp-dense-tlr",
    )
    plan = res.report.plan
    counts = plan.counts()
    dense64 = 8 * data.n_train**2 // 2
    print(
        f"\nMP+dense/TLR tile plan: {counts}\n"
        f"matrix footprint {res.factor.nbytes / 1e6:.2f} MB vs dense FP64 "
        f"{dense64 / 1e6:.2f} MB"
    )


if __name__ == "__main__":
    main()
