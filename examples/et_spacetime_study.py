"""Evapotranspiration space-time study (paper Table II + Section VI-A).

Exercises the complete pipeline the paper describes for the ET data:

1. a synthetic "raw" 21-year monthly panel over a Central-Asia-shaped
   region (climatology + linear spatial trend + space-time GRF);
2. the paper's preprocessing: subtract the per-month 2001-2020
   climatology, remove a per-month linear spatial trend, check
   approximate Gaussianity;
3. six-parameter nonseparable Gneiting MLE with the three compute
   variants, prediction + MSPE at held-out points.

Run:  python examples/et_spacetime_study.py
"""

import numpy as np

from repro import ExaGeoStatModel
from repro.data import (
    ET_THETA,
    detrend_linear,
    et_raw_panel,
    gaussianity_diagnostics,
    monthly_climatology_residuals,
    train_test_split,
)
from repro.stats import format_table, mspe

N_SPACE, N_YEARS = 64, 21


def main() -> None:
    # --- 1-2: raw panel and preprocessing ---------------------------------
    space, history, target = et_raw_panel(
        n_space=N_SPACE, n_years=N_YEARS, seed=23
    )
    print(
        f"raw ET-like panel: {N_YEARS - 1} history years x 12 months x "
        f"{N_SPACE} pixels + 1 target year"
    )
    resid = monthly_climatology_residuals(history, target)
    detrended = detrend_linear(resid, space)
    diag = gaussianity_diagnostics(detrended)
    print(
        "after climatology removal + per-month linear detrend: "
        f"mean {diag['mean']:+.3f}, sd {diag['std']:.3f}, "
        f"skewness {diag['skewness']:+.3f}, "
        f"excess kurtosis {diag['excess_kurtosis']:+.3f}\n"
    )

    # Assemble space-time observations: (x, y, month) -> residual.
    months = np.arange(12, dtype=np.float64)
    x_all = np.vstack([
        np.column_stack([space, np.full(N_SPACE, m)]) for m in months
    ])
    z_all = detrended.reshape(-1)
    x_train, z_train, x_test, z_test = train_test_split(
        x_all, z_all, n_test=80, seed=29
    )

    # --- 3: MLE + prediction under each variant ---------------------------
    rows = []
    for variant in ("dense-fp64", "mp-dense", "mp-dense-tlr"):
        model = ExaGeoStatModel(
            kernel="gneiting", variant=variant, tile_size=64, nugget=1e-8
        )
        model.fit(x_train, z_train, theta0=ET_THETA, max_iter=60)
        pred = model.predict(x_test)
        rows.append([variant, *model.theta_, model.loglik_,
                     mspe(pred.mean, z_test)])
    print(format_table(
        ["Approach", "Variance", "Range", "Smooth", "Range-t",
         "Smooth-t", "Nonsep", "Log-Lik", "MSPE"],
        rows,
        title=(
            "Table II reproduction (surrogate scale; smoothness-time "
            "clamped to the Gneiting validity region — see DESIGN.md)"
        ),
    ))
    print(
        "\nNote the nonseparability estimate: dropping it (beta = 0) is "
        "the simplification the paper warns 'may dramatically impact the "
        "prediction accuracy'."
    )


if __name__ == "__main__":
    main()
