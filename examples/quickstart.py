"""Quickstart: simulate a spatial dataset, fit it by MLE under the
three compute variants, and predict at held-out locations.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ExaGeoStatModel, MaternKernel
from repro.data import sample_gaussian_field, train_test_split, uniform_locations


def main() -> None:
    # --- simulate ---------------------------------------------------------
    # A rough Matérn field (smoothness 0.5) with medium spatial range.
    kernel = MaternKernel()
    theta_true = np.array([1.0, 0.1, 0.5])  # variance, range, smoothness
    x = uniform_locations(600, seed=1)
    z = sample_gaussian_field(kernel, theta_true, x, seed=2)
    x_train, z_train, x_test, z_test = train_test_split(
        x, z, n_test=80, seed=3
    )
    print(f"simulated {len(x)} locations; truth theta = {theta_true}")

    # --- fit + predict under each variant ----------------------------------
    for variant in ("dense-fp64", "mp-dense", "mp-dense-tlr"):
        model = ExaGeoStatModel(
            kernel=kernel, variant=variant, tile_size=64
        )
        model.fit(x_train, z_train, theta0=theta_true, max_iter=60)
        pred = model.predict(x_test, return_uncertainty=True)
        mspe = float(np.mean((pred.mean - z_test) ** 2))
        theta = ", ".join(f"{v:.4f}" for v in model.theta_)
        print(
            f"{variant:13s}  theta = [{theta}]  "
            f"loglik = {model.loglik_:10.3f}  MSPE = {mspe:.4f}  "
            f"mean predictive sd = {pred.standard_error().mean():.4f}"
        )

    print(
        "\nAll three variants should agree closely — that is the paper's "
        "Table I message: the adaptive approximations keep "
        "application-level accuracy."
    )


if __name__ == "__main__":
    main()
