"""Adaptive decision heat map (paper Fig. 9) in the terminal.

Builds the covariance of a weakly and a strongly correlated Matérn
field, runs the full precision- and structure-aware planning, renders
the per-tile decisions as an ASCII heat map, and reports memory
footprints — the textual Fig. 9.

Run:  python examples/decision_heatmap.py
"""

import numpy as np

from repro.kernels import MaternKernel
from repro.ordering import order_points
from repro.perfmodel import A64FX, PlanProfile, estimate_cholesky
from repro.tile import build_planned_covariance

GLYPHS = """
legend:  8 = dense FP64    4 = dense FP32    2 = dense FP16
         l = low-rank FP64 h = low-rank FP32 (lower triangle only)
"""


def render(plan) -> str:
    pgrid = plan.precision_grid()
    sgrid = plan.structure_grid()
    symbol = {64: "8", 32: "4", 16: "2", 0: " "}
    lines = []
    for i in range(plan.nt):
        row = []
        for j in range(plan.nt):
            g = symbol[int(pgrid[i, j])]
            if sgrid[i, j] == 2:
                g = {"8": "l", "4": "h", "2": "q"}[g]
            row.append(g)
        lines.append(" ".join(row))
    return "\n".join(lines)


def main() -> None:
    gen = np.random.default_rng(9)
    x = gen.uniform(size=(1200, 2))
    x = x[order_points(x, "morton")]
    kern = MaternKernel()

    print(GLYPHS)
    for label, rng_ in (("weak (WC)", 0.03), ("strong (SC)", 0.3)):
        theta = np.array([1.0, rng_, 0.5])
        # Fixed band: Algorithm 2's performance-model tuning is only
        # meaningful at production tile sizes (see bench_alg2); the
        # laptop-scale numerics use the scale-free rank criterion.
        matrix, report = build_planned_covariance(
            kern, theta, x, 60, nugget=1e-8,
            use_mp=True, use_tlr=True, band_size=2,
        )
        plan = report.plan
        dense_bytes = matrix.dense_fp64_nbytes()
        print(
            f"--- {label} correlation, {plan.nt}x{plan.nt} tiles, "
            f"auto band = {plan.band_size_dense} ---"
        )
        print(render(plan))
        print(
            f"footprint {matrix.nbytes / 1e6:6.2f} MB vs dense FP64 "
            f"{dense_bytes / 1e6:6.2f} MB "
            f"({1 - matrix.nbytes / dense_bytes:.0%} reduction)"
        )
        # Project to the paper's configuration (1M matrix, tile 2700).
        est = estimate_cholesky(
            PlanProfile.from_plan(plan), 1_000_000, 2700, A64FX,
            nodes=1024, band_size=3,
        )
        print(
            f"projected at 1M/tile-2700: {est.storage_bytes / 1e9:7.0f} GB "
            f"vs 4000 GB dense "
            f"(paper Fig. 9: 915 GB WC / 1830 GB SC)\n"
        )


if __name__ == "__main__":
    main()
