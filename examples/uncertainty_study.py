"""Uncertainty study: parameter UQ + conditional simulation.

The paper's "Implications" single out uncertainty-quantified
optimization as the natural follow-on ("the inverse of the covariance
again plays a central role").  This example takes the soil-moisture
surrogate and produces, under the MP+dense/TLR variant:

1. asymptotic standard errors / 95% Wald intervals of the fitted
   Matérn parameters (observed information via tiled likelihoods);
2. a fixed profile of the log-likelihood along the range axis;
3. conditional field simulations at held-out points, checked against
   the closed-form kriging mean and variance.

Run:  python examples/uncertainty_study.py
"""

import numpy as np

from repro import ExaGeoStatModel
from repro.core import profile_likelihood
from repro.data import soil_moisture_surrogate
from repro.stats import format_table


def main() -> None:
    data = soil_moisture_surrogate(n_train=500, n_test=60, seed=31)
    model = ExaGeoStatModel(kernel="matern", variant="mp-dense-tlr",
                            tile_size=60)
    model.fit(data.x_train, data.z_train,
              theta0=data.theta_true, max_iter=80)

    # --- 1: parameter uncertainty -----------------------------------------
    uq = model.uncertainty(level=0.95)
    rows = [
        row + [truth]
        for row, truth in zip(uq.summary_rows(), data.theta_true)
    ]
    print(format_table(
        ["parameter", "estimate", "std.err", "lo95", "hi95", "truth"],
        rows,
        title="MLE uncertainty (observed information, MP+dense/TLR)",
    ))

    # --- 2: likelihood profile ---------------------------------------------
    grid = np.linspace(0.5 * model.theta_[1], 2.0 * model.theta_[1], 11)
    prof = profile_likelihood(
        model.kernel, model.theta_, model._x, model._z,
        "range", grid, tile_size=60, variant=model.variant,
    )
    peak = prof.max()
    bars = "".join(
        "#" if p > peak - 1 else ("+" if p > peak - 4 else ".")
        for p in prof
    )
    print("\nrange profile (#: within 1 loglik unit of the peak):")
    print("  " + " ".join(f"{v:.3f}" for v in grid))
    print("  " + "     ".join(bars))

    # --- 3: conditional simulation ------------------------------------------
    draws = model.simulate(data.x_test, size=500, seed=99)
    pred = model.predict(data.x_test, return_uncertainty=True)
    mc_mean_err = np.max(np.abs(draws.mean(axis=0) - pred.mean))
    mc_sd_err = np.max(np.abs(draws.std(axis=0) - pred.standard_error()))
    print(
        f"\n500 conditional draws at {len(data.x_test)} held-out points: "
        f"max |MC mean - kriging mean| = {mc_mean_err:.3f}, "
        f"max |MC sd - kriging se| = {mc_sd_err:.3f}"
    )
    exceed = np.mean(draws > 1.0, axis=0)
    print(
        "exceedance probability P(Z > 1.0) ranges "
        f"{exceed.min():.2f} - {exceed.max():.2f} across test points — the "
        "kind of risk map (hazard thresholds) the paper's applications need."
    )


if __name__ == "__main__":
    main()
